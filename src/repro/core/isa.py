"""Physical instructions and operator evaluation.

This module defines the left-hand column of the paper's Table 1 — the
*physical* instructions stored in program memory — together with the
evaluation function ``J·K`` for opcodes and the abstract address
calculation operator ``addr`` (Section 3.4, "Address calculation").

The machine is parametric in evaluation: it calls into an
:class:`Evaluator`, whose default :class:`ConcreteEvaluator` computes over
Python ints.  The Pitchfork symbolic executor plugs in a symbolic
evaluator without touching the semantics (see
:mod:`repro.pitchfork.symex`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .errors import ReproError
from .lattice import Label, PUBLIC
from .values import Operand, Operands, Reg, Value, join_labels


# ---------------------------------------------------------------------------
# Physical instructions (Table 1, left column)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Instruction:
    """Base class of physical instructions."""


@dataclass(frozen=True)
class Op(Instruction):
    """Arithmetic operation ``(r = op(op, r⃗v, n'))``."""

    dest: Reg
    opcode: str
    args: Operands
    next: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.dest!r} = op({self.opcode}, {list(self.args)}, {self.next}))"


@dataclass(frozen=True)
class Br(Instruction):
    """Conditional branch ``br(op, r⃗v, n_true, n_false)``."""

    opcode: str
    args: Operands
    n_true: int
    n_false: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"br({self.opcode}, {list(self.args)}, {self.n_true}, {self.n_false})"


@dataclass(frozen=True)
class Jmpi(Instruction):
    """Indirect jump ``jmpi(r⃗v)`` (Appendix A.1)."""

    args: Operands

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"jmpi({list(self.args)})"


@dataclass(frozen=True)
class Load(Instruction):
    """Memory load ``(r = load(r⃗v, n'))``."""

    dest: Reg
    args: Operands
    next: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.dest!r} = load({list(self.args)}, {self.next}))"


@dataclass(frozen=True)
class Store(Instruction):
    """Memory store ``store(rv, r⃗v, n')``."""

    src: Operand
    args: Operands
    next: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"store({self.src!r}, {list(self.args)}, {self.next})"


@dataclass(frozen=True)
class Fence(Instruction):
    """Speculation barrier ``fence n`` (Section 3.6)."""

    next: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"fence {self.next}"


@dataclass(frozen=True)
class Call(Instruction):
    """Direct call ``call(n_f, n_ret)`` (Appendix A.2)."""

    target: int
    ret: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"call({self.target}, {self.ret})"


@dataclass(frozen=True)
class Ret(Instruction):
    """Function return ``ret`` (Appendix A.2)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ret"


def next_of(instr: Instruction) -> int:
    """The fall-through program point ``next(µ(n))`` for sequential
    instructions (used by the ``simple-fetch`` rule)."""
    if isinstance(instr, (Op, Load, Store, Fence)):
        return instr.next
    raise ReproError(f"{instr!r} has no static successor")


# ---------------------------------------------------------------------------
# Opcode table
# ---------------------------------------------------------------------------

#: Machine word width; arithmetic wraps modulo 2**WORD_BITS like hardware.
WORD_BITS = 64
_MASK = (1 << WORD_BITS) - 1


def _wrap(x: int) -> int:
    return x & _MASK


def _signed(x: int) -> int:
    x &= _MASK
    return x - (1 << WORD_BITS) if x >= (1 << (WORD_BITS - 1)) else x


def _bool(x: bool) -> int:
    return 1 if x else 0


#: opcode name -> (arity or None for variadic, concrete function on ints).
OPCODES: Dict[str, Tuple[Optional[int], Callable[..., int]]] = {
    "add": (None, lambda *xs: _wrap(sum(xs))),
    "sub": (2, lambda a, b: _wrap(a - b)),
    "mul": (None, lambda *xs: _wrap(_prod(xs))),
    "div": (2, lambda a, b: _wrap(a // b) if b else 0),
    "mod": (2, lambda a, b: _wrap(a % b) if b else 0),
    "and": (2, lambda a, b: a & b),
    "or": (2, lambda a, b: a | b),
    "xor": (2, lambda a, b: a ^ b),
    "not": (1, lambda a: _wrap(~a)),
    "neg": (1, lambda a: _wrap(-a)),
    "shl": (2, lambda a, b: _wrap(a << (b % WORD_BITS))),
    "shr": (2, lambda a, b: (a & _MASK) >> (b % WORD_BITS)),
    "lt": (2, lambda a, b: _bool(_signed(a) < _signed(b))),
    "le": (2, lambda a, b: _bool(_signed(a) <= _signed(b))),
    "gt": (2, lambda a, b: _bool(_signed(a) > _signed(b))),
    "ge": (2, lambda a, b: _bool(_signed(a) >= _signed(b))),
    "ltu": (2, lambda a, b: _bool((a & _MASK) < (b & _MASK))),
    "geu": (2, lambda a, b: _bool((a & _MASK) >= (b & _MASK))),
    "eq": (2, lambda a, b: _bool(a == b)),
    "ne": (2, lambda a, b: _bool(a != b)),
    "mov": (1, lambda a: a),
    # Constant-time select: sel(c, a, b) = a if c else b, branch-free.
    "sel": (3, lambda c, a, b: a if c else b),
    # Constant-time mask: -1 if c truthy else 0 (the classic ct idiom).
    "mask": (1, lambda c: _MASK if c else 0),
    "min": (2, lambda a, b: a if _signed(a) <= _signed(b) else b),
    "max": (2, lambda a, b: a if _signed(a) >= _signed(b) else b),
    # Abstract stack-pointer operators (Appendix A.2).  We model a
    # downward-growing stack of one-word entries.
    "succ": (1, lambda a: _wrap(a - 1)),
    "pred": (1, lambda a: _wrap(a + 1)),
    # Address arithmetic exposed as a plain opcode (used by retpolines,
    # Fig 13: ``rd = op(addr, [12, rb])``).
    "addr": (None, lambda *xs: _wrap(sum(xs))),
}

#: Opcodes whose result is naturally a truth value.
BOOLEAN_OPCODES = frozenset(
    {"lt", "le", "gt", "ge", "ltu", "geu", "eq", "ne", "and", "or", "not"})


def _prod(xs: Sequence[int]) -> int:
    out = 1
    for x in xs:
        out *= x
    return out


# ---------------------------------------------------------------------------
# Address calculation (Section 3.4)
# ---------------------------------------------------------------------------

def sum_addr(vals: Sequence[int]) -> int:
    """Simple addressing: the sum of the operands."""
    return _wrap(sum(vals))


def x86_addr(vals: Sequence[int]) -> int:
    """x86-style addressing ``v1 + v2·v3`` (with shorter forms allowed)."""
    if len(vals) == 3:
        return _wrap(vals[0] + vals[1] * vals[2])
    return sum_addr(vals)


# ---------------------------------------------------------------------------
# Evaluators
# ---------------------------------------------------------------------------

class Evaluator:
    """Evaluation strategy for opcodes, addresses and branch conditions.

    The machine uses exactly four entry points; each works on *labelled
    values* and is responsible for propagating labels (join of the
    operand labels, per the semantics).

    ``pure`` declares that the entry points are functions of their
    arguments alone (no hidden mutable state), so one machine step is a
    function of ``(configuration, directive)`` — the property the
    execution engine's step cache relies on (Theorem B.1).  Stateful
    evaluators (e.g. the symbolic one, which accumulates decisions)
    must set it to False.
    """

    pure: bool = True

    def evaluate(self, opcode: str, vals: Sequence[Value]) -> Value:
        """Apply ``J opcode K`` to resolved operand values."""
        raise NotImplementedError

    def address(self, vals: Sequence[Value]) -> Value:
        """Apply ``J addr K`` to resolved operand values."""
        raise NotImplementedError

    def truth(self, value: Value) -> bool:
        """Interpret a value as a branch condition."""
        raise NotImplementedError

    def concretize(self, value: Value) -> int:
        """Extract a concrete machine address from a value.

        The symbolic evaluator mirrors angr's behaviour of concretizing
        addresses; the concrete evaluator just checks for an int.
        """
        raise NotImplementedError


class ConcreteEvaluator(Evaluator):
    """Evaluates over Python ints; the default for the machine."""

    def __init__(self, addr_mode: Callable[[Sequence[int]], int] = sum_addr):
        self.addr_mode = addr_mode

    def evaluate(self, opcode: str, vals: Sequence[Value]) -> Value:
        if opcode not in OPCODES:
            raise ReproError(f"unknown opcode {opcode!r}")
        arity, fn = OPCODES[opcode]
        if arity is not None and len(vals) != arity:
            raise ReproError(
                f"opcode {opcode!r} expects {arity} operands, got {len(vals)}")
        payloads = [self._int(v) for v in vals]
        return Value(fn(*payloads), join_labels(vals))

    def address(self, vals: Sequence[Value]) -> Value:
        payloads = [self._int(v) for v in vals]
        return Value(self.addr_mode(payloads), join_labels(vals))

    def truth(self, value: Value) -> bool:
        return bool(self._int(value))

    def concretize(self, value: Value) -> int:
        return self._int(value)

    @staticmethod
    def _int(value: Value) -> int:
        if not isinstance(value.val, int):
            raise ReproError(
                f"concrete evaluator got non-integer payload {value.val!r}")
        return value.val
