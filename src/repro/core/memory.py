"""Labelled data memory µ (the data half of the paper's memory).

Memory maps addresses to labelled values.  Reads of unmapped addresses
yield a fresh public zero — in the paper's attack figures speculative
loads routinely read "irrelevant" values ``X`` from addresses the victim
never initialised, and the semantics must not get stuck there.

:class:`Region` is a small allocation helper used by the litmus tests and
case studies to lay out named arrays (``array A``, ``secretKey``, …) and
to ask questions like "which region does this observation's address fall
in", which the cache attacker uses for recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .lattice import Label, PUBLIC, SECRET
from .values import Value


@dataclass(frozen=True)
class Region:
    """A named, contiguous block of memory with a default label."""

    name: str
    base: int
    size: int
    label: Label = PUBLIC

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def addr(self, offset: int) -> int:
        """Address of ``self[offset]`` (bounds are deliberately unchecked:
        out-of-bounds arithmetic is what Spectre gadgets do)."""
        return self.base + offset

    def offsets(self) -> range:
        return range(self.size)


class Memory:
    """An immutable labelled memory.

    Mutation (:meth:`write`) returns a new memory sharing storage with
    the old one (copy-on-write of a dict).  Program text lives separately
    in :class:`repro.core.program.Program`.
    """

    __slots__ = ("_cells", "_regions")

    def __init__(self, cells: Optional[Dict[int, Value]] = None,
                 regions: Tuple[Region, ...] = ()):
        self._cells: Dict[int, Value] = dict(cells or {})
        self._regions = regions

    # -- reads -------------------------------------------------------------

    def read(self, addr: int) -> Value:
        """µ(a); unmapped addresses read as a fresh public 0."""
        got = self._cells.get(addr)
        if got is not None:
            return got
        return Value(0, PUBLIC)

    def is_mapped(self, addr: int) -> bool:
        return addr in self._cells

    def __getitem__(self, addr: int) -> Value:
        return self.read(addr)

    # -- writes ------------------------------------------------------------

    def write(self, addr: int, value: Value) -> "Memory":
        """µ[a ↦ v]; returns a new memory."""
        cells = dict(self._cells)
        cells[addr] = value
        return Memory(cells, self._regions)

    def write_all(self, pairs: Iterable[Tuple[int, Value]]) -> "Memory":
        cells = dict(self._cells)
        for addr, value in pairs:
            cells[addr] = value
        return Memory(cells, self._regions)

    # -- regions -----------------------------------------------------------

    def with_region(self, region: Region,
                    init: Optional[Iterable[int]] = None) -> "Memory":
        """Register a region and optionally initialise its cells."""
        cells = dict(self._cells)
        if init is not None:
            for off, payload in enumerate(init):
                cells[region.base + off] = Value(payload, region.label)
        else:
            for off in region.offsets():
                cells.setdefault(region.base + off, Value(0, region.label))
        return Memory(cells, self._regions + (region,))

    def region(self, name: str) -> Region:
        for r in self._regions:
            if r.name == name:
                return r
        raise KeyError(name)

    def regions(self) -> Tuple[Region, ...]:
        return self._regions

    def region_of(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, if any."""
        for r in self._regions:
            if addr in r:
                return r
        return None

    # -- equivalences --------------------------------------------------------

    def addresses(self) -> Iterator[int]:
        return iter(sorted(self._cells))

    def cells(self) -> Dict[int, Value]:
        """A snapshot copy of the mapped cells."""
        return dict(self._cells)

    def low_equivalent(self, other: "Memory") -> bool:
        """``≃pub`` on memories: agreement on all public cells.

        Two memories are low-equivalent when the same addresses hold
        public values and those public values coincide.  Secret cells may
        differ arbitrarily (but must be secret in both).
        """
        mine = {a: v for a, v in self._cells.items() if v.is_public()}
        theirs = {a: v for a, v in other._cells.items() if v.is_public()}
        if set(mine) != set(theirs):
            return False
        return all(mine[a].val == theirs[a].val for a in mine)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(tuple(sorted(
            (a, v.val, v.label) for a, v in self._cells.items()
            if isinstance(v.val, int))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = ", ".join(f"{a:#x}: {v!r}" for a, v in sorted(self._cells.items()))
        return f"Memory{{{cells}}}"


def layout(*specs: Tuple[str, int, Label, List[int]]) -> Memory:
    """Build a memory from (name, size, label, init) region specs laid out
    contiguously from address 0x40 (matching the paper's figures)."""
    mem = Memory()
    base = 0x40
    for name, size, label, init in specs:
        region = Region(name, base, size, label)
        mem = mem.with_region(region, init)
        base += size
    return mem
