"""Labelled data memory µ (the data half of the paper's memory).

Memory maps addresses to labelled values.  Reads of unmapped addresses
yield a fresh public zero — in the paper's attack figures speculative
loads routinely read "irrelevant" values ``X`` from addresses the victim
never initialised, and the semantics must not get stuck there.

Memories are immutable values, but *not* copied wholesale on write:
each instance is a persistent overlay — a shared base dict (never
mutated once published) plus a small private delta.  A store retire
therefore costs O(|delta|) ≤ the compaction threshold instead of
O(|memory|); when the delta grows past the threshold it is folded into
a fresh base, keeping reads at two dict probes.  This is the
engine-level structural sharing the exploration stack leans on (see
DESIGN.md, "The execution engine") — observable behaviour is exactly
that of the seed's copy-the-dict implementation.

:class:`Region` is a small allocation helper used by the litmus tests and
case studies to lay out named arrays (``array A``, ``secretKey``, …) and
to ask questions like "which region does this observation's address fall
in", which the cache attacker uses for recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .lattice import Label, PUBLIC, SECRET
from .values import Value

#: Delta entries tolerated before an overlay is folded into its base.
#: Small enough that writes stay effectively O(1), large enough that
#: bursts of stores (a drain retiring a full buffer) rarely compact.
_COMPACT_LIMIT = 32


def _cell_hash(addr: int, value: Value) -> int:
    """One cell's contribution to a memory's structural hash.

    Contributions are XOR-combined, which makes them order-independent
    (matching ``cells()`` equality, which has no order) and — crucially
    — invertible: a write can XOR the old cell's contribution out and
    the new one in, so the hash of ``µ[a ↦ v]`` is O(1) from the hash
    of ``µ``.  Non-integer payloads (symbolic expressions) contribute a
    constant, exactly like the seed hash which skipped them; equality
    still compares them fully.
    """
    payload = value.val
    if type(payload) is not int:
        return 0
    return hash((addr, payload, value.label))


@dataclass(frozen=True)
class Region:
    """A named, contiguous block of memory with a default label."""

    name: str
    base: int
    size: int
    label: Label = PUBLIC

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def addr(self, offset: int) -> int:
        """Address of ``self[offset]`` (bounds are deliberately unchecked:
        out-of-bounds arithmetic is what Spectre gadgets do)."""
        return self.base + offset

    def offsets(self) -> range:
        return range(self.size)


class Memory:
    """An immutable labelled memory (persistent base + delta overlay).

    Mutation (:meth:`write`) returns a new memory sharing the base
    storage with the old one.  Program text lives separately in
    :class:`repro.core.program.Program`.
    """

    __slots__ = ("_base", "_delta", "_regions", "_shash")

    def __init__(self, cells: Optional[Dict[int, Value]] = None,
                 regions: Tuple[Region, ...] = ()):
        self._base: Dict[int, Value] = dict(cells or {})
        self._delta: Dict[int, Value] = {}
        self._regions = regions
        shash = 0
        for addr, value in self._base.items():
            shash ^= _cell_hash(addr, value)
        self._shash = shash

    @classmethod
    def _overlay(cls, base: Dict[int, Value], delta: Dict[int, Value],
                 regions: Tuple[Region, ...], shash: int) -> "Memory":
        """Internal constructor sharing ``base`` (which must never be
        mutated after publication); compacts oversized deltas.

        ``shash`` is the already-maintained structural hash of the
        overlay's contents — compaction only re-shelves cells, so it
        passes through unchanged.  Never invalidated: memories are
        persistent, so the hash is a property of the value.
        """
        if len(delta) > _COMPACT_LIMIT:
            base = {**base, **delta}
            delta = {}
        mem = object.__new__(cls)
        mem._base = base
        mem._delta = delta
        mem._regions = regions
        mem._shash = shash
        return mem

    # -- reads -------------------------------------------------------------

    def read(self, addr: int) -> Value:
        """µ(a); unmapped addresses read as a fresh public 0."""
        got = self._delta.get(addr)
        if got is not None:
            return got
        got = self._base.get(addr)
        if got is not None:
            return got
        return Value(0, PUBLIC)

    def is_mapped(self, addr: int) -> bool:
        return addr in self._delta or addr in self._base

    def __getitem__(self, addr: int) -> Value:
        return self.read(addr)

    # -- writes ------------------------------------------------------------

    def write(self, addr: int, value: Value) -> "Memory":
        """µ[a ↦ v]; returns a new memory sharing storage with this one."""
        old = self._delta.get(addr)
        if old is None:
            old = self._base.get(addr)
        shash = self._shash ^ _cell_hash(addr, value)
        if old is not None:
            shash ^= _cell_hash(addr, old)
        return Memory._overlay(self._base, {**self._delta, addr: value},
                               self._regions, shash)

    def write_all(self, pairs: Iterable[Tuple[int, Value]]) -> "Memory":
        delta = dict(self._delta)
        shash = self._shash
        for addr, value in pairs:
            old = delta.get(addr)
            if old is None:
                old = self._base.get(addr)
            shash ^= _cell_hash(addr, value)
            if old is not None:
                shash ^= _cell_hash(addr, old)
            delta[addr] = value
        return Memory._overlay(self._base, delta, self._regions, shash)

    # -- regions -----------------------------------------------------------

    def with_region(self, region: Region,
                    init: Optional[Iterable[int]] = None) -> "Memory":
        """Register a region and optionally initialise its cells."""
        cells = self.cells()
        if init is not None:
            for off, payload in enumerate(init):
                cells[region.base + off] = Value(payload, region.label)
        else:
            for off in region.offsets():
                cells.setdefault(region.base + off, Value(0, region.label))
        return Memory(cells, self._regions + (region,))

    def region(self, name: str) -> Region:
        for r in self._regions:
            if r.name == name:
                return r
        raise KeyError(name)

    def regions(self) -> Tuple[Region, ...]:
        return self._regions

    def region_of(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, if any."""
        for r in self._regions:
            if addr in r:
                return r
        return None

    # -- equivalences --------------------------------------------------------

    def addresses(self) -> Iterator[int]:
        if not self._delta:
            return iter(sorted(self._base))
        return iter(sorted({*self._base, *self._delta}))

    def cells(self) -> Dict[int, Value]:
        """A snapshot copy of the mapped cells."""
        if not self._delta:
            return dict(self._base)
        return {**self._base, **self._delta}

    def low_equivalent(self, other: "Memory") -> bool:
        """``≃pub`` on memories: agreement on all public cells.

        Two memories are low-equivalent when the same addresses hold
        public values and those public values coincide.  Secret cells may
        differ arbitrarily (but must be secret in both).
        """
        mine = {a: v for a, v in self.cells().items() if v.is_public()}
        theirs = {a: v for a, v in other.cells().items() if v.is_public()}
        if set(mine) != set(theirs):
            return False
        return all(mine[a].val == theirs[a].val for a in mine)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        if self._shash != other._shash:
            # Sound fast-fail: equal cell maps have equal XOR hashes.
            return False
        if self._base is other._base and self._delta == other._delta:
            return True
        return self.cells() == other.cells()

    def __hash__(self) -> int:
        return self._shash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = ", ".join(f"{a:#x}: {v!r}" for a, v in sorted(self.cells().items()))
        return f"Memory{{{cells}}}"


def layout(*specs: Tuple[str, int, Label, List[int]]) -> Memory:
    """Build a memory from (name, size, label, init) region specs laid out
    contiguously from address 0x40 (matching the paper's figures)."""
    mem = Memory()
    base = 0x40
    for name, size, label, init in specs:
        region = Region(name, base, size, label)
        mem = mem.with_region(region, init)
        base += size
    return mem
