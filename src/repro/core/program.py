"""Program memory: the instruction half of the paper's µ.

A :class:`Program` maps program points (ints) to physical instructions.
Keeping program text separate from data memory loses nothing (the paper
never runs self-modifying code) and keeps both maps strongly typed.

Programs may carry symbolic labels (name → program point) produced by the
assembler, which the disassembler and reports use for readable traces.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .errors import IllFormedProgramError
from .isa import Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret, Store


class Program:
    """An immutable map from program points to instructions.

    Programs compare *structurally*: two programs are equal when they
    map the same points to equal instructions and share the entry
    point.  Labels are presentation metadata (round-trip printing keeps
    them, but a relabelled program is the same program) and do not take
    part in equality or hashing.
    """

    __slots__ = ("_instrs", "_labels", "entry", "_hash")

    def __init__(self, instrs: Dict[int, Instruction],
                 entry: Optional[int] = None,
                 labels: Optional[Dict[str, int]] = None):
        if not instrs:
            raise IllFormedProgramError("a program needs at least one instruction")
        self._instrs = dict(instrs)
        self._labels = dict(labels or {})
        self.entry = entry if entry is not None else min(self._instrs)
        self._hash = None

    def __getitem__(self, n: int) -> Instruction:
        try:
            return self._instrs[n]
        except KeyError:
            raise IllFormedProgramError(f"no instruction at program point {n}")

    def get(self, n: int) -> Optional[Instruction]:
        return self._instrs.get(n)

    def __contains__(self, n: int) -> bool:
        return n in self._instrs

    def __len__(self) -> int:
        return len(self._instrs)

    def points(self) -> Iterator[int]:
        return iter(sorted(self._instrs))

    def items(self) -> Iterator[Tuple[int, Instruction]]:
        for n in sorted(self._instrs):
            yield n, self._instrs[n]

    def label(self, name: str) -> int:
        """Program point of an assembler label."""
        return self._labels[name]

    def labels(self) -> Dict[str, int]:
        return dict(self._labels)

    def name_of(self, n: int) -> Optional[str]:
        """An assembler label naming program point ``n``, if any."""
        for name, point in self._labels.items():
            if point == n:
                return name
        return None

    def successors(self, n: int) -> Tuple[int, ...]:
        """Static successors of the instruction at ``n`` (for analyses).

        Indirect jumps and returns have statically unknown successors and
        yield ().
        """
        instr = self[n]
        if isinstance(instr, (Op, Load, Store, Fence)):
            return (instr.next,)
        if isinstance(instr, Br):
            return (instr.n_true, instr.n_false)
        if isinstance(instr, Call):
            return (instr.target,)
        if isinstance(instr, (Jmpi, Ret)):
            return ()
        raise IllFormedProgramError(f"unknown instruction {instr!r}")

    def validate(self, allow_halt_targets: bool = True) -> None:
        """Check that static branch/call targets exist.

        ``halt`` convention: fetching an unmapped program point
        terminates execution, so by default branches may target unmapped
        points (they are halt points).  With
        ``allow_halt_targets=False``, every target must be mapped —
        useful for catching label typos in hand-written programs.
        """
        if allow_halt_targets:
            return
        for n, instr in self.items():
            if isinstance(instr, Br):
                for t in (instr.n_true, instr.n_false):
                    if t not in self:
                        raise IllFormedProgramError(
                            f"branch at {n} targets missing point {t}")
            if isinstance(instr, Call) and instr.target not in self:
                raise IllFormedProgramError(
                    f"call at {n} targets missing point {instr.target}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self.entry == other.entry and self._instrs == other._instrs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.entry,
                               tuple((n, repr(i))
                                     for n, i in sorted(self._instrs.items()))))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({len(self._instrs)} instrs, entry={self.entry})"
