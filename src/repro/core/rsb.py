"""The return stack buffer σ (Appendix A.2).

The RSB is a log of ``push n`` / ``pop`` commands addressed by reorder
buffer indices, so that — like the reorder buffer — it can be rolled back
on misspeculation or memory hazards.  ``top(σ)`` replays the log in index
order into a stack and returns its top (or ``⊥`` when empty).

The paper notes three hardware behaviours for a ``ret`` fetched with an
empty RSB; all three are supported by the machine (see
``Machine.rsb_policy``):

* ``"directive"`` — the attacker supplies the target (Intel
  Skylake/Broadwell falling back to the branch target predictor);
* ``"refuse"`` — no speculation happens, the fetch is stuck until
  resolvable (AMD);
* ``"circular"`` — the RSB behaves as a circular buffer and always yields
  *some* value (most Intel; we replay the most recently popped value).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .values import BOTTOM, _Bottom

#: A log entry: (reorder-buffer index, "push"/"pop", target or None).
Entry = Tuple[int, str, Optional[int]]


class ReturnStackBuffer:
    """An immutable RSB command log."""

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Tuple[Entry, ...] = ()):
        self._entries = entries
        self._hash = None  # lazy structural hash (the log is immutable)

    def push(self, index: int, target: int) -> "ReturnStackBuffer":
        """``σ[index ↦ push target]``."""
        return ReturnStackBuffer(self._entries + ((index, "push", target),))

    def pop(self, index: int) -> "ReturnStackBuffer":
        """``σ[index ↦ pop]``."""
        return ReturnStackBuffer(self._entries + ((index, "pop", None),))

    def truncate_before(self, i: int) -> "ReturnStackBuffer":
        """Roll back: keep entries at reorder-buffer indices ``< i``."""
        return ReturnStackBuffer(
            tuple(e for e in self._entries if e[0] < i))

    def stack(self) -> List[int]:
        """``JσK``: replay the command log into a stack of program points."""
        st: List[int] = []
        for _idx, cmd, target in sorted(self._entries, key=lambda e: e[0]):
            if cmd == "push":
                st.append(target)  # type: ignore[arg-type]
            elif st:
                st.pop()
        return st

    def top(self) -> Union[int, _Bottom]:
        """``top(σ)``: the predicted return target, or ``⊥`` when empty."""
        st = self.stack()
        return st[-1] if st else BOTTOM

    def last_popped(self) -> Union[int, _Bottom]:
        """The value a circular RSB would replay on underflow.

        We model "most Intel processors treat the RSB as a circular
        buffer" by replaying the most recently *popped* program point; if
        nothing was ever pushed, 0 is produced (an arbitrary but fixed
        stale slot).
        """
        st: List[int] = []
        last = None
        for _idx, cmd, target in sorted(self._entries, key=lambda e: e[0]):
            if cmd == "push":
                st.append(target)  # type: ignore[arg-type]
            elif st:
                last = st.pop()
        return last if last is not None else 0

    def entries(self) -> Tuple[Entry, ...]:
        return self._entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReturnStackBuffer):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(self._entries)
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{i}↦{cmd}{'' if t is None else f' {t}'}"
            for i, cmd, t in self._entries)
        return f"RSB{{{body}}}"
