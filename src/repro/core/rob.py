"""The reorder buffer and the register resolve function.

The reorder buffer ``buf`` maps a contiguous range of natural-number
indices to transient instructions (Section 3, "Reorder buffer").  The
paper's conventions, which we follow exactly:

* ``MIN(∅) = MAX(∅) = 0`` and fetch inserts at ``MAX(buf) + 1`` — so the
  first index ever used is 1;
* retire removes ``MIN(buf)``; rollback keeps only indices ``j < i``;
* indices freed by a rollback are reused by subsequent fetches.

Buffers are immutable: every mutation returns a new buffer.  They are
small (bounded by the speculation bound), so structural copying is cheap
and keeps configurations value-like, which the SCT checker and the
exploration engines rely on.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

from .transient import TFence, Transient, assigns, resolved_value_of
from .values import BOTTOM, Operand, Operands, Reg, Value, _Bottom

#: Sentinel for the lazily computed oldest-fence cache.
_UNCOMPUTED = -2


class ReorderBuffer:
    """An immutable contiguous map from indices to transient instructions."""

    __slots__ = ("_base", "_slots", "_fence", "_hash")

    def __init__(self, base: int = 1, slots: Tuple[Transient, ...] = ()):
        self._base = base          # index of the first slot
        self._slots = slots
        self._fence = _UNCOMPUTED  # oldest fence index (-1: none)
        self._hash = None          # lazy structural hash (buffers are
                                   # immutable, so it is computed once)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def __bool__(self) -> bool:
        return bool(self._slots)

    def __contains__(self, i: int) -> bool:
        return self._base <= i < self._base + len(self._slots)

    def __getitem__(self, i: int) -> Transient:
        if i not in self:
            raise KeyError(i)
        return self._slots[i - self._base]

    def get(self, i: int) -> Optional[Transient]:
        """The instruction at index ``i``, or None if absent."""
        return self[i] if i in self else None

    def min_index(self) -> int:
        """``MIN(buf)``; 0 for the *initial* empty buffer.

        For an empty buffer this is ``base - 1`` so that indices keep
        increasing monotonically across drains — matching the paper's
        worked examples (Fig 13 numbers fetches above retired indices)
        and keeping the RSB's index-ordered log meaningful.
        """
        return self._base if self._slots else self._base - 1

    def max_index(self) -> int:
        """``MAX(buf)``; 0 for the *initial* empty buffer (see
        :meth:`min_index` for the drained-buffer convention)."""
        return self._base + len(self._slots) - 1 if self._slots else self._base - 1

    def indices(self) -> range:
        """The contiguous domain of the buffer."""
        if not self._slots:
            return range(0)
        return range(self._base, self._base + len(self._slots))

    def items(self) -> Iterator[Tuple[int, Transient]]:
        """(index, instruction) pairs in increasing index order."""
        for off, instr in enumerate(self._slots):
            yield self._base + off, instr

    def first_fence(self) -> Optional[int]:
        """Index of the oldest in-flight fence, or None.

        Cached per (immutable) buffer: the highlighted side condition
        of the execute rules (``∀j < i : buf(j) ≠ fence``) asks this on
        every execute step, and rescanning the window each time is the
        dominant cost at large speculation bounds.
        """
        f = self._fence
        if f == _UNCOMPUTED:
            f = -1
            for off, instr in enumerate(self._slots):
                if isinstance(instr, TFence):
                    f = self._base + off
                    break
            self._fence = f
        return None if f == -1 else f

    # -- mutations (all return fresh buffers) ------------------------------

    def insert_next(self, instr: Transient) -> Tuple[int, "ReorderBuffer"]:
        """Insert at ``MAX(buf) + 1``; returns (index, new buffer)."""
        i = self.max_index() + 1
        if not self._slots:
            # Empty buffer keeps its base so indices are reused after a
            # full drain, matching MAX(∅) = 0 only for the initial buffer.
            return i, ReorderBuffer(i, (instr,))
        return i, ReorderBuffer(self._base, self._slots + (instr,))

    def append_all(self, instrs: Tuple[Transient, ...]) -> "ReorderBuffer":
        """Insert several instructions at consecutive next indices."""
        buf = self
        for instr in instrs:
            _, buf = buf.insert_next(instr)
        return buf

    def set(self, i: int, instr: Transient) -> "ReorderBuffer":
        """``buf[i ↦ instr]`` for an existing index ``i``."""
        if i not in self:
            raise KeyError(i)
        off = i - self._base
        slots = self._slots[:off] + (instr,) + self._slots[off + 1:]
        return ReorderBuffer(self._base, slots)

    def remove_min(self, count: int = 1) -> "ReorderBuffer":
        """Remove the ``count`` lowest-indexed entries (retire)."""
        if count > len(self._slots):
            raise KeyError("retiring from an empty buffer")
        return ReorderBuffer(self._base + count, self._slots[count:])

    def truncate_before(self, i: int) -> "ReorderBuffer":
        """``buf[j : j < i]`` — drop index ``i`` and everything younger."""
        if not self._slots or i > self.max_index():
            return self
        keep = max(0, i - self._base)
        return ReorderBuffer(self._base, self._slots[:keep])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{i}: {instr!r}" for i, instr in self.items())
        return f"ROB{{{body}}}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReorderBuffer):
            return NotImplemented
        if not self._slots and not other._slots:
            return True
        return self._base == other._base and self._slots == other._slots

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            # All empty buffers are equal regardless of base, so they
            # must share one hash; otherwise the hash walks the slot
            # tuple exactly once per buffer (cached like _fence).
            h = hash(()) if not self._slots else hash((self._base,
                                                       self._slots))
            self._hash = h
        return h


# ---------------------------------------------------------------------------
# Register resolve function (Fig 3, extended per Section 3.5)
# ---------------------------------------------------------------------------

def resolve_register(buf: ReorderBuffer, i: int, regs: Dict[Reg, Value],
                     reg: Reg) -> Union[Value, _Bottom]:
    """``(buf +i ρ)(r)``.

    Finds the youngest in-flight assignment to ``reg`` strictly before
    buffer index ``i``.  If it is resolved (a value, or a partially
    resolved load's forwarded value), return its value; if it is still
    pending, return ``⊥``; with no in-flight assignment, fall back to the
    register file ``ρ``.
    """
    for j in reversed(buf.indices()):
        if j >= i:
            continue
        instr = buf[j]
        if assigns(instr, reg):
            return resolved_value_of(instr)
    if reg not in regs:
        raise KeyError(f"register {reg!r} is not in the register file")
    return regs[reg]


def resolve_operand(buf: ReorderBuffer, i: int, regs: Dict[Reg, Value],
                    rv: Operand) -> Union[Value, _Bottom]:
    """``(buf +i ρ)`` lifted to operands: values resolve to themselves."""
    if isinstance(rv, Value):
        return rv
    return resolve_register(buf, i, regs, rv)


def resolve_operands(buf: ReorderBuffer, i: int, regs: Dict[Reg, Value],
                     rvs: Operands) -> Optional[Tuple[Value, ...]]:
    """Pointwise lifting; None if *any* operand is still unresolved."""
    out = []
    for rv in rvs:
        v = resolve_operand(buf, i, regs, rv)
        if v is BOTTOM:
            return None
        out.append(v)
    return tuple(out)
