"""The paper's primary contribution: a speculative out-of-order machine
with attacker directives, leakage observations, and speculative
constant-time (SCT).

Quick tour::

    from repro.core import (Machine, Config, Memory, Program,
                            fetch, execute, RETIRE, run)

    machine = Machine(program)
    config = Config.initial({"ra": 9}, memory, pc=1)
    result = run(machine, config, [fetch(True), fetch(), execute(2)])
    result.trace      # the leakage the attacker observes
"""

from .config import Config
from .directives import (Directive, Execute, Fetch, FETCH, RETIRE, Retire,
                         Schedule, execute, fetch, retire_count)
from .errors import (AssemblerError, CompileError, IllFormedProgramError,
                     ReproError, StuckError)
from .executor import RunResult, StepRecord, drain, is_well_formed, run
from .isa import (Br, Call, ConcreteEvaluator, Evaluator, Fence, Instruction,
                  Jmpi, Load, Op, OPCODES, Ret, Store, WORD_BITS, sum_addr,
                  x86_addr)
from .lattice import (Label, Lattice, PUBLIC, SECRET, TWO_POINT, get_lattice,
                      join_all)
from .machine import Machine, RSP, RTMP
from .memory import Memory, Region, layout
from .observations import (Fwd, Jump, Observation, Read, Rollback, Trace,
                           Write, addresses, is_secret_dependent,
                           secret_observations)
from .pretty import render_execution, render_trace
from .program import Program
from .rob import ReorderBuffer, resolve_operand, resolve_operands, resolve_register
from .rsb import ReturnStackBuffer
from .sct import (SCTCounterExample, SCTResult, check_pair, check_sct,
                  secret_variations, single_trace_violations)
from .sequential import (SequentialCT, check_sequential_ct, run_sequential)
from .transient import (TBr, TCallMarker, TFence, TJmpi, TJump, TLoad, TOp,
                        TRetMarker, TStore, TValue, Transient)
from .values import (BOTTOM, Operand, Operands, Reg, Value, operands, public,
                     secret)

__all__ = [name for name in dir() if not name.startswith("_")]
