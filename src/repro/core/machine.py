"""The speculative out-of-order machine — every rule of Section 3 + App A.

:class:`Machine` implements the small-step relation ``C ↪_d^o C'``: given
a configuration and an attacker directive it produces the successor
configuration and the step's (possibly compound) leakage.

Implemented rules
-----------------

==============================  =============================================
fetch                           cond-fetch, simple-fetch, jmpi-fetch,
                                call-direct-fetch, ret-fetch-rsb,
                                ret-fetch-rsb-empty
execute                         op-execute, cond-execute-correct/-incorrect,
                                jmpi-execute-correct/-incorrect,
                                load-execute-nodep / -forward,
                                load-execute-forwarded-guessed (§3.5),
                                load-execute-addr-ok / -addr-hazard (§3.5),
                                load-execute-addr-mem-match / -mem-hazard,
                                store-execute-value,
                                store-execute-addr-ok / -addr-hazard
retire                          value-retire, store-retire, jump-retire,
                                fence-retire, call-retire, ret-retire
==============================  =============================================

Engineering notes (documented divergences, both also in DESIGN.md):

* Reorder-buffer indices increase monotonically across retires instead of
  resetting when the buffer drains; this matches the paper's own worked
  examples (e.g. Fig 13 numbers new fetches above retired indices) and is
  required for the RSB's index-ordered command log to be meaningful.
* A hazard rollback that targets a load fetched as part of a call/ret
  group squashes the *whole* group (the group's transients are useless
  without their marker) and resumes at the group's program point.  The
  observation sequence is unchanged.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from .config import Config
from .directives import Directive, Execute, Fetch, Retire
from .errors import StuckError
from .isa import (Br, Call, ConcreteEvaluator, Evaluator, Fence, Instruction,
                  Jmpi, Load, Op, Ret, Store, next_of)
from .lattice import Label
from .observations import (Fwd, Jump, Observation, Read, Rollback, StepLeakage,
                           Write)
from .program import Program
from .rob import ReorderBuffer, resolve_operand, resolve_operands
from .rsb import ReturnStackBuffer
from .transient import (TBr, TCallMarker, TFence, TJmpi, TJump, TLoad, TOp,
                        TRetMarker, TStore, TValue, Transient)
from .values import BOTTOM, Reg, Value

#: Register used as the stack pointer by call/ret (Appendix A.2).
RSP = Reg("rsp")

#: Scratch register used by the ret sequence (Appendix A.2).
RTMP = Reg("rtmp")


class Machine:
    """The speculative machine for a fixed program.

    Parameters
    ----------
    program:
        The program memory µ (instruction half).
    evaluator:
        Evaluation strategy (defaults to concrete ints).
    rsb_policy:
        Behaviour of ``ret`` fetched with an empty RSB:
        ``"directive"`` (attacker supplies the target — Intel BTB
        fallback), ``"refuse"`` (stuck — AMD), or ``"circular"``
        (replay a stale slot — most Intel).  See Appendix A.2.
    """

    def __init__(self, program: Program,
                 evaluator: Optional[Evaluator] = None,
                 rsb_policy: str = "directive"):
        if rsb_policy not in ("directive", "refuse", "circular"):
            raise ValueError(f"unknown rsb_policy {rsb_policy!r}")
        self.program = program
        self.evaluator = evaluator or ConcreteEvaluator()
        self.rsb_policy = rsb_policy

    # ------------------------------------------------------------------
    # The step function
    # ------------------------------------------------------------------

    def step(self, config: Config,
             directive: Directive) -> Tuple[Config, StepLeakage]:
        """One small step ``C ↪_d^o C'``; raises StuckError if no rule
        applies."""
        if isinstance(directive, Fetch):
            return self._fetch(config, directive)
        if isinstance(directive, Execute):
            return self._execute(config, directive)
        if isinstance(directive, Retire):
            return self._retire(config)
        raise StuckError(f"unknown directive {directive!r}", directive)

    # ------------------------------------------------------------------
    # Fetch stage
    # ------------------------------------------------------------------

    def _fetch(self, config: Config,
               d: Fetch) -> Tuple[Config, StepLeakage]:
        instr = self.program.get(config.pc)
        if instr is None:
            raise StuckError(f"nothing to fetch at program point {config.pc}", d)

        if isinstance(instr, Br):
            return self._fetch_br(config, instr, d)
        if isinstance(instr, Jmpi):
            return self._fetch_jmpi(config, instr, d)
        if isinstance(instr, Call):
            return self._fetch_call(config, instr, d)
        if isinstance(instr, Ret):
            return self._fetch_ret(config, instr, d)
        if d.pred is not None:
            raise StuckError(f"{instr!r} takes a plain fetch directive", d)

        # simple-fetch: op / load / store / fence.
        transient = self._transient_of(instr, config.pc)
        _i, buf = config.buf.insert_next(transient)
        return config.with_(pc=next_of(instr), buf=buf), ()

    @staticmethod
    def _transient_of(instr: Instruction, pc: int) -> Transient:
        """``transient(µ(n))`` for the simple-fetch rule.

        Loads are annotated with their program point ``pc`` — hazard
        rollbacks resume there (§3.4).
        """
        if isinstance(instr, Op):
            return TOp(instr.dest, instr.opcode, instr.args)
        if isinstance(instr, Load):
            return TLoad(instr.dest, instr.args, pp=pc)
        if isinstance(instr, Store):
            return TStore(instr.src, instr.args)
        if isinstance(instr, Fence):
            return TFence()
        raise StuckError(f"{instr!r} has no simple transient form")

    def _fetch_br(self, config: Config, instr: Br,
                  d: Fetch) -> Tuple[Config, StepLeakage]:
        """cond-fetch: speculatively follow the directive's arm."""
        if not isinstance(d.pred, bool):
            raise StuckError("br requires fetch: true or fetch: false", d)
        guess = instr.n_true if d.pred else instr.n_false
        transient = TBr(instr.opcode, instr.args, guess,
                        (instr.n_true, instr.n_false))
        _i, buf = config.buf.insert_next(transient)
        return config.with_(pc=guess, buf=buf), ()

    def _fetch_jmpi(self, config: Config, instr: Jmpi,
                    d: Fetch) -> Tuple[Config, StepLeakage]:
        """jmpi-fetch: the attacker guesses the target (App A.1)."""
        if not isinstance(d.pred, int) or isinstance(d.pred, bool):
            raise StuckError("jmpi requires fetch: n with a program point", d)
        transient = TJmpi(instr.args, d.pred)
        _i, buf = config.buf.insert_next(transient)
        return config.with_(pc=d.pred, buf=buf), ()

    def _fetch_call(self, config: Config, instr: Call,
                    d: Fetch) -> Tuple[Config, StepLeakage]:
        """call-direct-fetch: marker + rsp bump + return-address store."""
        if d.pred is not None:
            raise StuckError("call takes a plain fetch directive", d)
        i = config.buf.max_index() + 1
        group = (
            TCallMarker(),
            TOp(RSP, "succ", (RSP,)),
            TStore(Value(instr.ret), (RSP,)),
        )
        buf = config.buf.append_all(group)
        rsb = config.rsb.push(i, instr.ret)
        return config.with_(pc=instr.target, buf=buf, rsb=rsb), ()

    def _fetch_ret(self, config: Config, instr: Ret,
                   d: Fetch) -> Tuple[Config, StepLeakage]:
        """ret-fetch-rsb / ret-fetch-rsb-empty (App A.2)."""
        predicted = config.rsb.top()
        if predicted is BOTTOM:
            if self.rsb_policy == "refuse":
                raise StuckError("RSB empty and policy refuses to speculate", d)
            if self.rsb_policy == "circular":
                if d.pred is not None:
                    raise StuckError("circular RSB ignores fetch targets", d)
                target = config.rsb.last_popped()
            else:  # "directive": the attacker picks the target.
                if not isinstance(d.pred, int) or isinstance(d.pred, bool):
                    raise StuckError(
                        "ret with empty RSB requires fetch: n", d)
                target = d.pred
        else:
            if d.pred is not None:
                raise StuckError("ret with a usable RSB takes a plain fetch", d)
            target = predicted

        i = config.buf.max_index() + 1
        group = (
            TRetMarker(),
            TLoad(RTMP, (RSP,), pp=config.pc, group=i),
            TOp(RSP, "pred", (RSP,)),
            TJmpi((RTMP,), target),
        )
        buf = config.buf.append_all(group)
        rsb = config.rsb.pop(i)
        return config.with_(pc=target, buf=buf, rsb=rsb), ()

    # ------------------------------------------------------------------
    # Execute stage
    # ------------------------------------------------------------------

    def _execute(self, config: Config,
                 d: Execute) -> Tuple[Config, StepLeakage]:
        i = d.index
        if i not in config.buf:
            raise StuckError(f"no buffer entry at index {i}", d)
        self._check_no_fence_before(config.buf, i, d)
        instr = config.buf[i]

        if isinstance(instr, TOp) and d.part is None:
            return self._exec_op(config, i, instr)
        if isinstance(instr, TBr) and d.part is None:
            return self._exec_br(config, i, instr)
        if isinstance(instr, TJmpi) and d.part is None:
            return self._exec_jmpi(config, i, instr)
        if isinstance(instr, TLoad):
            if isinstance(d.part, int):
                return self._exec_load_guess_fwd(config, i, instr, d.part)
            if d.part is None and instr.pred is None:
                return self._exec_load_plain(config, i, instr)
            if d.part is None:
                return self._exec_load_predicted(config, i, instr)
        if isinstance(instr, TStore):
            if d.part == "value":
                return self._exec_store_value(config, i, instr)
            if d.part == "addr":
                return self._exec_store_addr(config, i, instr)
        raise StuckError(f"directive {d!r} does not apply to {instr!r}", d)

    @staticmethod
    def _check_no_fence_before(buf: ReorderBuffer, i: int,
                               d: Directive) -> None:
        """The highlighted side condition ``∀j < i : buf(j) ≠ fence``.

        Uses the buffer's cached oldest-fence index — this check runs
        on every execute step, so rescanning the window would be
        quadratic over a speculation bound's worth of executes.
        """
        j = buf.first_fence()
        if j is not None and j < i:
            raise StuckError(
                f"fence at {j} blocks execution of index {i}", d)

    def _resolve_all(self, config: Config, i: int, args) -> Tuple[Value, ...]:
        try:
            vals = resolve_operands(config.buf, i, config.regs, args)
        except KeyError as e:
            # A (speculative) path read a register the program never
            # defined; treat as unresolvable rather than crashing.
            raise StuckError(f"undefined register at buffer index {i}: {e}")
        if vals is None:
            raise StuckError(f"operands of buffer index {i} are unresolved")
        return vals

    # -- ops ------------------------------------------------------------

    def _exec_op(self, config: Config, i: int,
                 instr: TOp) -> Tuple[Config, StepLeakage]:
        """Resolve an arithmetic op to a value instruction (Table 1)."""
        vals = self._resolve_all(config, i, instr.args)
        result = self.evaluator.evaluate(instr.opcode, vals)
        buf = config.buf.set(i, TValue(instr.dest, result))
        return config.with_(buf=buf), ()

    # -- conditional branches (§3.3) -------------------------------------

    def _exec_br(self, config: Config, i: int,
                 instr: TBr) -> Tuple[Config, StepLeakage]:
        vals = self._resolve_all(config, i, instr.args)
        cond = self.evaluator.evaluate(instr.opcode, vals)
        taken = self.evaluator.truth(cond)
        target = instr.targets[0] if taken else instr.targets[1]
        label = cond.label
        if target == instr.guess:
            # cond-execute-correct
            buf = config.buf.set(i, TJump(target))
            return config.with_(buf=buf), (Jump(target, label),)
        # cond-execute-incorrect: squash everything younger than i.
        buf = config.buf.truncate_before(i)
        _i, buf = buf.insert_next(TJump(target))
        rsb = config.rsb.truncate_before(i)
        new = config.with_(pc=target, buf=buf, rsb=rsb)
        return new, (Rollback(), Jump(target, label))

    # -- indirect jumps (App A.1) -----------------------------------------

    def _exec_jmpi(self, config: Config, i: int,
                   instr: TJmpi) -> Tuple[Config, StepLeakage]:
        vals = self._resolve_all(config, i, instr.args)
        addr = self.evaluator.address(vals)
        target = self.evaluator.concretize(addr)
        label = addr.label
        if target == instr.guess:
            # jmpi-execute-correct
            buf = config.buf.set(i, TJump(target))
            return config.with_(buf=buf), (Jump(target, label),)
        # jmpi-execute-incorrect
        buf = config.buf.truncate_before(i)
        _i, buf = buf.insert_next(TJump(target))
        rsb = config.rsb.truncate_before(i)
        new = config.with_(pc=target, buf=buf, rsb=rsb)
        return new, (Rollback(), Jump(target, label))

    # -- loads (§3.4) -------------------------------------------------------

    def _matching_stores(self, buf: ReorderBuffer, below: int,
                         addr: int) -> List[int]:
        """Indices j < below of stores with a resolved address equal to
        ``addr`` (the pattern ``buf(j) = store(_, a)``)."""
        out = []
        for j, instr in buf.items():
            if j >= below:
                break
            if (isinstance(instr, TStore) and instr.addr_resolved()
                    and self.evaluator.concretize(instr.addr) == addr):
                out.append(j)
        return out

    def _exec_load_plain(self, config: Config, i: int,
                         instr: TLoad) -> Tuple[Config, StepLeakage]:
        """load-execute-nodep / load-execute-forward."""
        vals = self._resolve_all(config, i, instr.args)
        addr_v = self.evaluator.address(vals)
        a = self.evaluator.concretize(addr_v)
        label = addr_v.label
        matching = self._matching_stores(config.buf, i, a)
        if not matching:
            # load-execute-nodep: read from memory.
            value = config.mem.read(a)
            buf = config.buf.set(i, TValue(instr.dest, value, dep=BOTTOM,
                                           addr=a, pp=instr.pp,
                                           group=instr.group))
            return config.with_(buf=buf), (Read(a, label),)
        j = max(matching)
        store = config.buf[j]
        assert isinstance(store, TStore)
        if not store.value_resolved():
            raise StuckError(
                f"matching store at {j} has an unresolved value; resolve it "
                f"first or choose a different schedule")
        # load-execute-forward: take the store's data, skip memory.
        buf = config.buf.set(i, TValue(instr.dest, store.src, dep=j,
                                       addr=a, pp=instr.pp,
                                       group=instr.group))
        return config.with_(buf=buf), (Fwd(a, label),)

    def _exec_load_guess_fwd(self, config: Config, i: int, instr: TLoad,
                             j: int) -> Tuple[Config, StepLeakage]:
        """load-execute-forwarded-guessed (§3.5): the aliasing predictor
        forwards from store ``j`` before the load's address is known."""
        if instr.pred is not None:
            raise StuckError(f"load at {i} already has a forwarded value")
        if j >= i or j not in config.buf:
            raise StuckError(f"fwd source {j} must be an older buffer entry")
        store = config.buf[j]
        if not isinstance(store, TStore) or not store.value_resolved():
            raise StuckError(
                f"fwd source {j} must be a store with a resolved value")
        assert isinstance(store.src, Value)
        buf = config.buf.set(
            i, TLoad(instr.dest, instr.args, pp=instr.pp,
                     pred=(store.src, j), group=instr.group))
        return config.with_(buf=buf), ()

    def _exec_load_predicted(self, config: Config, i: int,
                             instr: TLoad) -> Tuple[Config, StepLeakage]:
        """Resolve a partially resolved load (§3.5): check the guessed
        forward against the now-known address."""
        assert instr.pred is not None
        value, j = instr.pred
        vals = self._resolve_all(config, i, instr.args)
        addr_v = self.evaluator.address(vals)
        a = self.evaluator.concretize(addr_v)
        label = addr_v.label

        if j in config.buf:
            store = config.buf[j]
            assert isinstance(store, TStore)
            store_addr_ok = (not store.addr_resolved()
                             or self.evaluator.concretize(store.addr) == a)
            intervening = [k for k in self._matching_stores(config.buf, i, a)
                           if j < k]
            if store_addr_ok and not intervening:
                # load-execute-addr-ok
                buf = config.buf.set(i, TValue(instr.dest, value, dep=j,
                                               addr=a, pp=instr.pp,
                                               group=instr.group))
                return config.with_(buf=buf), (Fwd(a, label),)
            # load-execute-addr-hazard: squash the load and younger.
            return self._rollback_to_load(config, i, instr.pp, instr.group,
                                          (Rollback(), Fwd(a, label)))

        # Originating store already retired: validate against memory.
        if self._matching_stores(config.buf, i, a):
            raise StuckError(
                f"prior in-flight store to {a:#x} shadows memory validation")
        actual = config.mem.read(a)
        if actual == value:
            # load-execute-addr-mem-match
            buf = config.buf.set(i, TValue(instr.dest, value, dep=BOTTOM,
                                           addr=a, pp=instr.pp,
                                           group=instr.group))
            return config.with_(buf=buf), (Read(a, label),)
        # load-execute-addr-mem-hazard
        return self._rollback_to_load(config, i, instr.pp, instr.group,
                                      (Rollback(), Read(a, label)))

    def _rollback_to_load(self, config: Config, k: int, pp: int,
                          group: Optional[int],
                          leak: StepLeakage) -> Tuple[Config, StepLeakage]:
        """Squash buffer index ``k`` and younger and refetch from ``pp``.

        When the hazarded load belongs to a call/ret group, the whole
        group (starting at its marker) is squashed instead, since the
        remaining group fragments could never retire.
        """
        cut = group if group is not None else k
        buf = config.buf.truncate_before(cut)
        rsb = config.rsb.truncate_before(cut)
        return config.with_(pc=pp, buf=buf, rsb=rsb), leak

    # -- stores (§3.4) -----------------------------------------------------

    def _exec_store_value(self, config: Config, i: int,
                          instr: TStore) -> Tuple[Config, StepLeakage]:
        """store-execute-value."""
        if instr.value_resolved():
            raise StuckError(f"store at {i} already has a resolved value")
        try:
            value = resolve_operand(config.buf, i, config.regs, instr.src)
        except KeyError as e:
            raise StuckError(f"undefined register at buffer index {i}: {e}")
        if value is BOTTOM:
            raise StuckError(f"store data at {i} is still unresolved")
        buf = config.buf.set(i, TStore(value, instr.args, instr.addr))
        return config.with_(buf=buf), ()

    def _exec_store_addr(self, config: Config, i: int,
                         instr: TStore) -> Tuple[Config, StepLeakage]:
        """store-execute-addr-ok / store-execute-addr-hazard.

        The hazard check walks all younger *resolved* loads
        ``(r = v{j_k, a_k})``: a load of address ``a`` that took its value
        from memory (``j_k = ⊥``) or from a store older than this one
        (``j_k < i``) read stale data; a load that forwarded from *this*
        store (``j_k = i``) but resolved a different address forwarded
        wrongly.  (⊥ < n for all n, per §3.4.)
        """
        if instr.addr_resolved():
            raise StuckError(f"store at {i} already has a resolved address")
        vals = self._resolve_all(config, i, instr.args)
        addr_v = self.evaluator.address(vals)
        a = self.evaluator.concretize(addr_v)
        label = addr_v.label
        resolved = Value(a, label)

        hazard_k: Optional[int] = None
        hazard_load: Optional[TValue] = None
        for k, entry in config.buf.items():
            if k <= i or not isinstance(entry, TValue):
                continue
            if not entry.is_load_result():
                continue
            jk, ak = entry.dep, entry.addr
            jk_lt_i = (jk is BOTTOM) or (jk < i)  # ⊥ < n for every n
            stale_read = (ak == a and jk_lt_i)
            wrong_fwd = (jk == i and ak != a)
            if stale_read or wrong_fwd:
                hazard_k = k
                hazard_load = entry
                break  # min(k) > i: the earliest hazarded load

        if hazard_k is None:
            # store-execute-addr-ok
            buf = config.buf.set(i, TStore(instr.src, instr.args, resolved))
            return config.with_(buf=buf), (Fwd(a, label),)

        # store-execute-addr-hazard: squash the hazarded load and younger,
        # keep (and resolve) this store, restart at the load's pp.
        assert hazard_load is not None
        cut = hazard_load.group if hazard_load.group is not None else hazard_k
        buf = config.buf.truncate_before(cut)
        buf = buf.set(i, TStore(instr.src, instr.args, resolved))
        rsb = config.rsb.truncate_before(cut)
        new = config.with_(pc=hazard_load.pp, buf=buf, rsb=rsb)
        return new, (Rollback(), Fwd(a, label))

    # ------------------------------------------------------------------
    # Retire stage
    # ------------------------------------------------------------------

    def _retire(self, config: Config) -> Tuple[Config, StepLeakage]:
        if not config.buf:
            raise StuckError("nothing to retire")
        i = config.buf.min_index()
        instr = config.buf[i]

        if isinstance(instr, TValue):
            # value-retire (also used for resolved loads).
            regs = dict(config.regs)
            regs[instr.dest] = instr.value
            return config.with_(regs=regs, buf=config.buf.remove_min()), ()

        if isinstance(instr, TStore):
            if not instr.fully_resolved():
                raise StuckError(f"store at {i} is not fully resolved")
            assert isinstance(instr.src, Value) and instr.addr is not None
            a = self.evaluator.concretize(instr.addr)
            mem = config.mem.write(a, instr.src)
            leak = (Write(a, instr.addr.label),)
            return config.with_(mem=mem, buf=config.buf.remove_min()), leak

        if isinstance(instr, TJump):
            # jump-retire
            return config.with_(buf=config.buf.remove_min()), ()

        if isinstance(instr, TFence):
            # fence-retire
            return config.with_(buf=config.buf.remove_min()), ()

        if isinstance(instr, TCallMarker):
            return self._retire_call(config, i)

        if isinstance(instr, TRetMarker):
            return self._retire_ret(config, i)

        raise StuckError(f"cannot retire unresolved {instr!r}")

    def _retire_call(self, config: Config, i: int) -> Tuple[Config, StepLeakage]:
        """call-retire: commit rsp and the return-address store together."""
        bump = config.buf.get(i + 1)
        store = config.buf.get(i + 2)
        if not (isinstance(bump, TValue) and bump.dest == RSP):
            raise StuckError("call group: rsp bump not yet resolved")
        if not (isinstance(store, TStore) and store.fully_resolved()):
            raise StuckError("call group: return-address store not resolved")
        assert isinstance(store.src, Value) and store.addr is not None
        regs = dict(config.regs)
        regs[RSP] = bump.value
        a = self.evaluator.concretize(store.addr)
        mem = config.mem.write(a, store.src)
        leak = (Write(a, store.addr.label),)
        return config.with_(regs=regs, mem=mem,
                            buf=config.buf.remove_min(3)), leak

    def _retire_ret(self, config: Config, i: int) -> Tuple[Config, StepLeakage]:
        """ret-retire: commit rsp only (rtmp is microarchitectural)."""
        load = config.buf.get(i + 1)
        bump = config.buf.get(i + 2)
        jump = config.buf.get(i + 3)
        if not (isinstance(load, TValue) and load.dest == RTMP):
            raise StuckError("ret group: return-address load not resolved")
        if not (isinstance(bump, TValue) and bump.dest == RSP):
            raise StuckError("ret group: rsp bump not yet resolved")
        if not isinstance(jump, TJump):
            raise StuckError("ret group: indirect jump not yet resolved")
        regs = dict(config.regs)
        regs[RSP] = bump.value
        return config.with_(regs=regs, buf=config.buf.remove_min(4)), ()

    # ------------------------------------------------------------------
    # Directive enumeration (for explorers and random testing)
    # ------------------------------------------------------------------

    def enabled_directives(self, config: Config,
                           jmpi_candidates: Iterable[int] = ()) -> List[Directive]:
        """All directives that take a step from ``config``.

        ``jmpi_candidates`` seeds guessed targets for indirect fetches
        (the space of ``fetch: n`` is unbounded; callers choose it).
        Determined by trial stepping, which is exact by construction.
        """
        candidates: List[Directive] = []
        instr = self.program.get(config.pc)
        if isinstance(instr, Br):
            candidates += [Fetch(True), Fetch(False)]
        elif isinstance(instr, (Jmpi, Ret)):
            candidates.append(Fetch(None))
            candidates += [Fetch(n) for n in jmpi_candidates]
        elif instr is not None:
            candidates.append(Fetch(None))
        for i, entry in config.buf.items():
            if isinstance(entry, TStore):
                candidates += [Execute(i, "value"), Execute(i, "addr")]
            elif isinstance(entry, TLoad):
                candidates.append(Execute(i))
                for j, other in config.buf.items():
                    if j < i and isinstance(other, TStore):
                        candidates.append(Execute(i, j))
            elif isinstance(entry, (TOp, TBr, TJmpi)):
                candidates.append(Execute(i))
        if config.buf:
            candidates.append(Retire())

        enabled = []
        for d in candidates:
            try:
                self.step(config, d)
            except StuckError:
                continue
            enabled.append(d)
        return enabled
