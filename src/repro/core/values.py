"""Labelled values, registers and operands.

The machine computes over *labelled values* ``v_ℓ`` (Section 3,
"Values and labels"): a payload together with a security label.  The
payload is normally a Python ``int`` but the machine is parametric in it —
the Pitchfork symbolic executor substitutes symbolic expressions
(:mod:`repro.pitchfork.symex`) without changing the semantics.

Instruction operands (the paper's ``r⃗v``) are either register names
(:class:`Reg`) or immediate labelled values (:class:`Value`).
``⊥`` — the "unresolved" result of the register resolve function — is the
singleton :data:`BOTTOM`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from .lattice import Label, PUBLIC, SECRET, join_all


#: Interned small-integer values, one table per two-point label.
#: Machine arithmetic over gadget-sized programs produces the same few
#: hundred labelled constants over and over; sharing one instance per
#: (payload, label) keeps forked configurations' register files and
#: memories pointing at common objects.  Only the PUBLIC/SECRET
#: singletons intern (checked by identity — the hot path must not pay
#: for hashing a label); each table is bounded by the key range itself.
_INTERN_PUBLIC: dict = {}
_INTERN_SECRET: dict = {}
_INTERN_RANGE = range(-1024, 4097)


@dataclass(frozen=True)
class Value:
    """A labelled value ``v_ℓ``.

    ``val`` is the payload (an int, or a symbolic expression under the
    Pitchfork executor); ``label`` is its security label.  Small integer
    values are interned: construction may return a shared (still
    immutable) instance.
    """

    val: object
    label: Label = PUBLIC

    def __new__(cls, val: object = 0, label: Label = PUBLIC) -> "Value":
        if cls is Value and type(val) is int and val in _INTERN_RANGE:
            if label is PUBLIC:
                table = _INTERN_PUBLIC
            elif label is SECRET:
                table = _INTERN_SECRET
            else:
                return super().__new__(cls)
            got = table.get(val)
            if got is not None:
                return got
            self = table[val] = super().__new__(cls)
            return self
        return super().__new__(cls)

    # Values are immutable and possibly interned: copying returns the
    # same instance, and (un)pickling goes through the constructor so a
    # shared instance is never rebuilt in place.
    def __copy__(self) -> "Value":
        return self

    def __deepcopy__(self, memo) -> "Value":
        return self

    def __reduce__(self):
        return (type(self), (self.val, self.label))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "" if self.label.is_public() else f"_{self.label.name[:3]}"
        return f"{self.val}{suffix}"

    def join(self, label: Label) -> "Value":
        """The same payload with ``label`` joined onto the value's label."""
        return Value(self.val, self.label.join(label))

    def relabel(self, label: Label) -> "Value":
        """The same payload with exactly ``label``."""
        return Value(self.val, label)

    def is_public(self) -> bool:
        return self.label.is_public()


@dataclass(frozen=True)
class Reg:
    """A register name, e.g. ``Reg("ra")``.

    The register file is a finite map from :class:`Reg` to :class:`Value`.
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"%{self.name}"


class _Bottom:
    """The undefined result ``⊥`` of the register resolve function.

    Also used for hazard checks where the paper defines ``⊥ < n`` for
    every index ``n`` (Section 3.4): a load annotated ``{⊥, a}`` read its
    value from memory.
    """

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"

    def __bool__(self) -> bool:
        return False


#: Singleton ``⊥``.
BOTTOM = _Bottom()

#: An operand: register or immediate labelled value.
Operand = Union[Reg, Value]

#: A list of operands, the paper's ``r⃗v``.
Operands = Tuple[Operand, ...]


def public(val: object) -> Value:
    """Shorthand for a public labelled value."""
    return Value(val, PUBLIC)


def secret(val: object) -> Value:
    """Shorthand for a secret labelled value."""
    return Value(val, SECRET)


def operands(*items: object) -> Operands:
    """Normalise a mixed argument list into a tuple of operands.

    Plain ints become public immediates, strings become registers::

        operands(40, "ra")  ==  (Value(40, PUBLIC), Reg("ra"))
    """
    out = []
    for item in items:
        if isinstance(item, (Reg, Value)):
            out.append(item)
        elif isinstance(item, str):
            out.append(Reg(item))
        elif isinstance(item, int):
            out.append(Value(item, PUBLIC))
        else:
            raise TypeError(f"cannot make an operand from {item!r}")
    return tuple(out)


def labels_of(values: Iterable[Value]) -> Tuple[Label, ...]:
    """The tuple of labels of a value list (the paper's ``ℓ⃗``)."""
    return tuple(v.label for v in values)


def join_labels(values: Iterable[Value]) -> Label:
    """``⊔ ℓ⃗`` over a list of labelled values."""
    return join_all(labels_of(values))
