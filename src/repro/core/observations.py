"""Leakage observations (Section 3.1, "Our semantics ... produces a
sequence of observations").

The machine does not model caches or predictors; instead every externally
visible effect becomes an observation:

* ``read a_ℓ``  — a memory load from address ``a`` (cache-visible);
* ``fwd a_ℓ``   — a store-to-load forward for address ``a`` (the
  *absence* of a memory access is also visible to a cache attacker);
* ``write a_ℓ`` — a retired store to address ``a``;
* ``jump n_ℓ``  — resolved control flow (port contention, I-cache, …);
* ``rollback``  — a misspeculation or hazard was detected (timing).

The label ``ℓ`` on an observation is the join of the labels of the data
that produced the address/target.  *Speculative constant time* fails
exactly when two low-equivalent runs produce different observation
sequences; for sequentially-CT programs this coincides with some
observation carrying a non-public label (Cor. B.10), which is what
Pitchfork flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .lattice import Label, PUBLIC


@dataclass(frozen=True)
class Observation:
    """Base class of attacker-visible observations."""

    def is_transient(self) -> bool:
        """True for observations an in-flight (unretired) step produced."""
        return False


@dataclass(frozen=True)
class Read(Observation):
    """``read a_ℓ`` — memory load at address ``a``."""

    addr: object
    label: Label = PUBLIC

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"read {self.addr}_{self.label}"


@dataclass(frozen=True)
class Fwd(Observation):
    """``fwd a_ℓ`` — store-to-load forward (or store address resolution)
    for address ``a``."""

    addr: object
    label: Label = PUBLIC

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"fwd {self.addr}_{self.label}"


@dataclass(frozen=True)
class Write(Observation):
    """``write a_ℓ`` — retired store to address ``a``."""

    addr: object
    label: Label = PUBLIC

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"write {self.addr}_{self.label}"


@dataclass(frozen=True)
class Jump(Observation):
    """``jump n_ℓ`` — resolved control flow to program point ``n``."""

    target: int
    label: Label = PUBLIC

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"jump {self.target}_{self.label}"


@dataclass(frozen=True)
class Rollback(Observation):
    """``rollback`` — misspeculation/hazard detected and squashed."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "rollback"


#: The (possibly empty) leakage of one small step, e.g. ``rollback, jump n``.
StepLeakage = Tuple[Observation, ...]

#: A full trace O.
Trace = Tuple[Observation, ...]


def labelled(obs: Observation) -> bool:
    """Does this observation carry a label at all (rollbacks do not)?"""
    return hasattr(obs, "label")


def is_secret_dependent(obs: Observation) -> bool:
    """True iff the observation's label is not public.

    These are precisely the observations Pitchfork flags: an attacker
    watching the trace learns something about non-public data.
    """
    return labelled(obs) and not obs.label.is_public()  # type: ignore[attr-defined]


def secret_observations(trace: Trace) -> Trace:
    """The sub-trace of secret-dependent observations."""
    return tuple(o for o in trace if is_secret_dependent(o))


def addresses(trace: Trace) -> Tuple[object, ...]:
    """All addresses/targets mentioned by a trace, in order (the input to
    a cache model — any eviction policy is a function of these)."""
    out = []
    for o in trace:
        if isinstance(o, (Read, Fwd, Write)):
            out.append(o.addr)
        elif isinstance(o, Jump):
            out.append(o.target)
    return tuple(out)
