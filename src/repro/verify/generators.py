"""Random program / configuration / schedule generators.

Used by the executable metatheory (:mod:`repro.verify.theorems`) and the
hypothesis-based property tests.  Programs are loop-free (branches only
jump forward), so every schedule terminates; stores and loads stay
within a small arena so forwarding and hazards actually happen.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.config import Config
from ..core.directives import Directive, Execute, Fetch, Retire, Schedule
from ..core.errors import StuckError
from ..core.isa import Br, Fence, Instruction, Load, Op, Store
from ..core.lattice import PUBLIC, SECRET
from ..core.machine import Machine
from ..core.memory import Memory, Region
from ..core.program import Program
from ..core.values import Reg, Value, operands

REGS = ("r0", "r1", "r2", "r3")
ARENA = 0x40
ARENA_SIZE = 8
OPCODES = ("add", "sub", "xor", "and", "ltu", "eq", "mul")


def random_program(rng: random.Random, length: int = 10,
                   p_secret_data: float = 0.3) -> Program:
    """A loop-free random program of ``length`` instructions."""
    instrs = {}
    for n in range(1, length + 1):
        nxt = n + 1
        kind = rng.choices(("op", "load", "store", "br", "fence"),
                           weights=(30, 25, 25, 15, 5))[0]
        if kind == "op" or (kind == "br" and n == length):
            dest = Reg(rng.choice(REGS))
            opcode = rng.choice(OPCODES)
            args = operands(rng.choice(REGS),
                            rng.choice([rng.randrange(8), rng.choice(REGS)]))
            instrs[n] = Op(dest, opcode, args, nxt)
        elif kind == "load":
            dest = Reg(rng.choice(REGS))
            base = ARENA + rng.randrange(ARENA_SIZE)
            if rng.random() < 0.5:
                args = operands(base)
            else:
                args = operands(ARENA, rng.choice(REGS))
            instrs[n] = Load(dest, args, nxt)
        elif kind == "store":
            src = (Value(rng.randrange(8)) if rng.random() < 0.5
                   else Reg(rng.choice(REGS)))
            base = ARENA + rng.randrange(ARENA_SIZE)
            if rng.random() < 0.5:
                args = operands(base)
            else:
                args = operands(ARENA, rng.choice(REGS))
            instrs[n] = Store(src, args, nxt)
        elif kind == "br":
            # forward-only targets keep programs loop-free
            t = rng.randrange(n + 1, length + 2)
            f = rng.randrange(n + 1, length + 2)
            args = operands(rng.choice(REGS), rng.randrange(4))
            instrs[n] = Br(rng.choice(("ltu", "eq", "ne", "geu")), args, t, f)
        else:
            instrs[n] = Fence(nxt)
    return Program(instrs, entry=1)


def random_config(rng: random.Random,
                  p_secret_data: float = 0.3) -> Config:
    """A random initial configuration over the arena."""
    regs = {}
    for r in REGS:
        label = SECRET if rng.random() < p_secret_data else PUBLIC
        regs[r] = Value(rng.randrange(ARENA_SIZE), label)
    mem = Memory()
    cells = []
    for off in range(ARENA_SIZE):
        label = SECRET if rng.random() < p_secret_data else PUBLIC
        cells.append((ARENA + off, Value(rng.randrange(16), label)))
    mem = mem.with_region(Region("arena", ARENA, ARENA_SIZE, PUBLIC), None)
    mem = mem.write_all(cells)
    return Config.initial(regs, mem, pc=1)


def random_schedule(machine: Machine, config: Config, rng: random.Random,
                    max_steps: int = 400,
                    drain: bool = True) -> Tuple[Schedule, Config]:
    """A random well-formed schedule, built by stepping random enabled
    directives.  With ``drain`` the schedule runs to a terminal
    configuration (needed by the consistency corollaries)."""
    schedule: List[Directive] = []
    current = config
    for _ in range(max_steps):
        enabled = machine.enabled_directives(current)
        if drain and machine.program.get(current.pc) is None:
            # Halted: stop fetching, only wind down the buffer.
            enabled = [d for d in enabled if not isinstance(d, Fetch)]
        if not enabled:
            break
        # Light bias towards draining so schedules terminate.
        weights = [3 if isinstance(d, (Execute, Retire)) else 2
                   for d in enabled]
        d = rng.choices(enabled, weights=weights)[0]
        current, _leak = machine.step(current, d)
        schedule.append(d)
        if drain and not current.buf and \
                machine.program.get(current.pc) is None:
            break
    return tuple(schedule), current
