"""Executable metatheory (Appendix B) and random generators."""

from .generators import (random_config, random_program, random_schedule)
from .theorems import (MetatheoryStats, TheoremCheck, check_consistency,
                       check_determinism, check_label_stability,
                       check_sequential_equivalence, check_tool_soundness,
                       run_experiments)

__all__ = [
    "random_config", "random_program", "random_schedule",
    "MetatheoryStats", "TheoremCheck", "check_consistency",
    "check_determinism", "check_label_stability",
    "check_sequential_equivalence", "check_tool_soundness",
    "run_experiments",
]
