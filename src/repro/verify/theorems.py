"""Executable metatheory: empirical checks of Appendix B.

Each check runs one randomized experiment and returns a
:class:`TheoremCheck` (ok + context).  The property tests and the
metatheory benchmark drive these over hundreds of random programs:

* **Determinism** (Lemma B.1): one (configuration, directive) pair steps
  to exactly one successor and leakage.
* **Sequential equivalence** (Thm 3.2 / B.7): any well-formed schedule's
  outcome is ``≈``-equivalent to the canonical sequential execution with
  the same number of retires — and equal when terminal.
* **Consistency** (Cor. B.8): any two terminal executions agree.
* **Label stability** (Thm B.9): a speculative trace free of label ℓ
  implies the sequential trace is also free of ℓ.
* **Tool soundness** (Thm B.20): if a random schedule (bounded by n)
  leaks a secret, some tool schedule DT(n) leaks one too.

Every check takes the machine as its first argument and only steps it
through ``run``/``run_sequential``, so a counting
:class:`repro.engine.ExecutionEngine` can stand in for the machine and
the checks' total step work surfaces through ``api.Report`` (the
``metatheory`` analysis does exactly this).  The determinism check
deliberately unwraps an engine for its second replay: answering it
from a step cache whose soundness presumes determinism would be
circular.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.config import Config
from ..core.directives import Schedule, retire_count
from ..core.errors import StuckError
from ..core.executor import run
from ..core.machine import Machine
from ..core.observations import secret_observations
from ..core.program import Program
from ..core.sequential import run_sequential
from ..pitchfork import ExplorationOptions, Explorer
from .generators import random_config, random_program, random_schedule


@dataclass(frozen=True)
class TheoremCheck:
    """One experiment's outcome."""

    theorem: str
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def check_determinism(machine: Machine, config: Config,
                      schedule: Schedule) -> TheoremCheck:
    """Lemma B.1: replaying a schedule gives identical state and trace.

    The second replay runs on the raw machine: if ``machine`` is a
    caching :class:`repro.engine.ExecutionEngine`, a cache hit would
    hand run 2 run 1's very objects and the comparison would confirm
    determinism by construction — the circularity this check exists to
    rule out.
    """
    raw = getattr(machine, "machine", machine)
    r1 = run(machine, config, schedule, record_steps=False)
    r2 = run(raw, config, schedule, record_steps=False)
    ok = r1.final == r2.final and r1.trace == r2.trace
    return TheoremCheck("determinism (B.1)", ok,
                        "" if ok else "replay diverged")


def check_sequential_equivalence(machine: Machine, config: Config,
                                 schedule: Schedule) -> TheoremCheck:
    """Thm 3.2/B.7: C ⇓_D^N C1 implies C ⇓_seq^N C2 with C1 ≈ C2."""
    spec = run(machine, config, schedule, record_steps=False)
    seq = run_sequential(machine, config, stop_at=spec.retired)
    if seq.retired != spec.retired:
        return TheoremCheck(
            "sequential equivalence (3.2)", False,
            f"sequential run retired {seq.retired} != {spec.retired}")
    ok = spec.final.arch_equivalent(seq.final)
    if ok and spec.final.is_terminal():
        # The strengthening for terminal configurations: equality of
        # architectural state (buffers are empty on both sides).
        ok = (spec.final.regs == seq.final.regs
              and spec.final.mem == seq.final.mem)
    return TheoremCheck("sequential equivalence (3.2)", ok,
                        "" if ok else
                        f"spec {spec.final!r} !≈ seq {seq.final!r}")


def check_consistency(machine: Machine, config: Config, s1: Schedule,
                      s2: Schedule) -> TheoremCheck:
    """Cor. B.8: two terminal executions commit the same state."""
    r1 = run(machine, config, s1, record_steps=False)
    r2 = run(machine, config, s2, record_steps=False)
    if not (r1.final.is_terminal() and r2.final.is_terminal()):
        return TheoremCheck("consistency (B.8)", True, "skipped: not terminal")
    ok = (r1.final.regs == r2.final.regs and r1.final.mem == r2.final.mem)
    return TheoremCheck("consistency (B.8)", ok,
                        "" if ok else "terminal states differ")


def check_label_stability(machine: Machine, config: Config,
                          schedule: Schedule) -> TheoremCheck:
    """Thm B.9 (as Cor. B.10): a secret-free speculative trace implies a
    secret-free sequential trace."""
    spec = run(machine, config, schedule, record_steps=False)
    if secret_observations(spec.trace):
        return TheoremCheck("label stability (B.9)", True,
                            "skipped: speculative trace already leaks")
    seq = run_sequential(machine, config, stop_at=spec.retired)
    ok = not secret_observations(seq.trace)
    return TheoremCheck("label stability (B.9)", ok,
                        "" if ok else "sequential run leaked more")


def check_tool_soundness(machine: Machine, config: Config,
                         schedule: Schedule, bound: int) -> TheoremCheck:
    """Thm B.20: a leaking schedule within ``bound`` implies DT(bound)
    (here: the explorer with both forwarding and aliasing enabled)
    also finds a leak."""
    spec = run(machine, config, schedule, record_steps=False)
    if not secret_observations(spec.trace):
        return TheoremCheck("tool soundness (B.20)", True,
                            "skipped: schedule does not leak")
    max_buf = _max_buffer_size(machine, config, schedule)
    if max_buf > bound:
        return TheoremCheck("tool soundness (B.20)", True,
                            f"skipped: schedule exceeds bound ({max_buf})")
    options = ExplorationOptions(bound=bound, fwd_hazards=True,
                                 explore_aliasing=True, max_paths=4000)
    result = Explorer(machine, options).explore(config, stop_at_first=True)
    ok = bool(result.violations)
    return TheoremCheck("tool soundness (B.20)", ok,
                        "" if ok else "tool missed a leaking schedule")


def _max_buffer_size(machine: Machine, config: Config,
                     schedule: Schedule) -> int:
    biggest = 0
    current = config
    for d in schedule:
        current, _ = machine.step(current, d)
        biggest = max(biggest, len(current.buf))
    return biggest


@dataclass
class MetatheoryStats:
    """Aggregate over many random experiments."""

    experiments: int = 0
    failures: int = 0
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return self.failures == 0


def run_experiments(seed: int = 0, programs: int = 30,
                    schedules_per_program: int = 4,
                    program_length: int = 10,
                    tool_bound: int = 12) -> MetatheoryStats:
    """Randomized sweep over all five theorem checks."""
    rng = random.Random(seed)
    stats = MetatheoryStats()
    for _p in range(programs):
        program = random_program(rng, length=program_length)
        machine = Machine(program)
        config = random_config(rng)
        drained = []
        for _s in range(schedules_per_program):
            schedule, _final = random_schedule(machine, config, rng)
            checks = [
                check_determinism(machine, config, schedule),
                check_sequential_equivalence(machine, config, schedule),
                check_label_stability(machine, config, schedule),
                check_tool_soundness(machine, config, schedule, tool_bound),
            ]
            drained.append(schedule)
            for check in checks:
                stats.experiments += 1
                if not check.ok:
                    stats.failures += 1
                elif check.detail.startswith("skipped"):
                    stats.skipped += 1
        if len(drained) >= 2:
            stats.experiments += 1
            check = check_consistency(machine, config, drained[0],
                                      drained[1])
            if not check.ok:
                stats.failures += 1
            elif check.detail.startswith("skipped"):
                stats.skipped += 1
    return stats
