"""Best-first violation hunting: UCT bandit search over the fork trie.

Every other strategy optimises for *exhaustive* enumeration of DT(n);
this one optimises the bug-hunting objective — reach a speculative-CT
violation in as few machine steps as possible.  It is the Legion idea
(MCTS over the path tree, cheap simulations scoring subtrees before
committing expensive effort) applied to Definition B.18's schedule
tree: the frontier mirrors the explorer's fork structure as a trie (the
same shape :class:`~repro.engine.tree.ScheduleTree` materialises for
the symbolic replay), every fork arm is a bandit arm, and each ``pop``
walks root-to-leaf choosing the child maximising the UCT score

    Q(child) + c * sqrt(ln(N(parent) + 1) / (N(child) + 1))

where ``Q = (hits + prior) / (N + 1)`` blends back-propagated
violation rewards with a *prior* computed from cheap playout signals
already available in the engine:

* **pending tainted transmitter** — the strongest signal: the arm's
  reorder buffer already holds an unexecuted observation producer (a
  branch condition, load or store address, or indirect-jump target)
  whose operands resolve — through the in-flight values ahead of it in
  the buffer — to a secret label.  Executing that entry *is* the leak;
  the score saturates when the arm's fetch has also run off the
  program, because a draining buffer executes its backlog immediately;
* **tainted-load proximity** — otherwise, a bounded static walk (the
  "playout") over the program's successor graph from the arm's fetch
  PC; a ``load`` within reach scores by closeness, boosted when its
  operands already hold (architecturally or in flight) secret-labelled
  values;
* **speculation-window depth** — arms with a fuller reorder buffer are
  deeper into a speculation window, where secret-dependent transient
  observations live;
* **novelty** — ``1 / (1 + visits(pc))`` of the arm's fetch-PC
  footprint, so saturated program regions decay (the same signal
  :class:`~repro.engine.frontier.CoverageFrontier` ranks by, here just
  one term of the score and re-ranked on every pop).

Completed-path outcomes arrive through the :meth:`Frontier.reward`
feedback hook — the first strategy to use it.  A violation credits
reward mass up the arm's ancestor chain, so subtrees that *produced*
findings are revisited before subtrees that merely look promising; a
clean completion increments the chain's visit counts instead, so a
subtree decays exactly when paths through it complete without paying —
the bandit trade-off, not a static heap order.  Before any evidence
exists every score is its prior and ties break to the latest push,
which is the depth-first descent into the just-forked mispredicted arm:
``mcts`` degrades to prior-steered DFS, never to undirected rotation.

Run to completion the frontier still pops every pushed item exactly
once — Theorem B.20's explored *set* is order-invariant, so ``mcts``
flags the identical observation set as ``dfs`` (pinned by
``tests/test_mcts.py`` and the shard/subsume equivalence suites) —
only the order, and therefore the time-to-first-violation, changes.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from ..core.isa import Br, Call, Fence, Load, Op, Store
from ..core.transient import TBr, TJmpi, TLoad, TStore, TValue
from .frontier import Frontier, register_strategy

__all__ = ["MCTSFrontier", "DEFAULT_EXPLORATION", "DEFAULT_PLAYOUT_DEPTH",
           "validate_mcts"]

#: Default UCT exploration constant.  Hunting wants exploitation of the
#: playout priors; the classic sqrt(2) over-explores on trees this
#: shallow (tuned on the flagged litmus registry via
#: ``benchmarks/bench_hunt.py``).
DEFAULT_EXPLORATION = 0.5

#: Default static-playout depth: how many successor instructions the
#: tainted-load proximity signal looks ahead from an arm's fetch PC.
DEFAULT_PLAYOUT_DEPTH = 8


def validate_mcts(exploration: float, playout_depth: int) -> None:
    """Validate the mcts strategy knobs (shared by every options type)."""
    if not isinstance(exploration, (int, float)) or \
            isinstance(exploration, bool) or \
            not math.isfinite(exploration) or exploration < 0:
        raise ValueError(f"mcts_c (exploration constant) must be a "
                         f"finite non-negative number, got {exploration!r}")
    if not isinstance(playout_depth, int) or isinstance(playout_depth, bool) \
            or playout_depth < 0:
        raise ValueError(f"mcts_playout (playout depth) must be a "
                         f"non-negative int, got {playout_depth!r}")


def _successors(instr) -> tuple:
    """Static successor PCs for the playout walk (dynamic targets of
    ``jmpi``/``ret`` are unknowable without executing — the walk stops
    there)."""
    if isinstance(instr, (Op, Load, Store, Fence)):
        return (instr.next,)
    if isinstance(instr, Br):
        return (instr.n_true, instr.n_false)
    if isinstance(instr, Call):
        return (instr.target, instr.ret)
    return ()


class _Node:
    """One fork-trie node: a pushed (and possibly popped) frontier item.

    ``pending`` nodes are exactly the poppable leaves; popped nodes stay
    in the trie as interior bandit state (visits / reward mass).
    ``pending_desc`` counts pending nodes in the subtree including self,
    so the selection walk never descends into a drained subtree.
    """

    __slots__ = ("parent", "children", "visits", "hits", "prior",
                 "pending", "pending_desc", "seq", "item")

    def __init__(self, parent: Optional["_Node"], prior: float, seq: int,
                 item: Any):
        self.parent = parent
        self.children: List["_Node"] = []
        self.visits = 0
        self.hits = 0.0
        self.prior = prior
        self.pending = True
        self.pending_desc = 1
        self.seq = seq
        self.item = item


class MCTSFrontier(Frontier):
    """UCT selection over the fork trie (see the module docstring).

    The trie is reconstructed from the push/pop protocol alone: the
    explorer pops an item, advances it to its next fork, and pushes the
    fork's arms — so every push between two pops is a child of the last
    popped node.  That is exactly the ScheduleTree fork structure,
    built online without touching the driver.

    Deterministic: scores are pure functions of the trie state and ties
    break by insertion order (latest wins, matching the depth-first
    preference for the just-forked mispredicted arm).
    """

    strategy = "mcts"
    description = ("best-first violation hunting: UCT bandit over the "
                   "fork trie, priors from pending tainted "
                   "transmitters, tainted-load proximity, speculation "
                   "depth and PC novelty (knobs: --mcts-c, "
                   "--mcts-playout)")
    knobs = ("program", "exploration", "playout_depth")

    def __init__(self, seed: int = 0,
                 pc_of: Optional[Callable[[Any], Optional[int]]] = None,
                 program=None,
                 exploration: float = DEFAULT_EXPLORATION,
                 playout_depth: int = DEFAULT_PLAYOUT_DEPTH):
        super().__init__(seed, pc_of)
        validate_mcts(exploration, playout_depth)
        self.program = program      #: for the static playout (optional)
        self.exploration = exploration
        self.playout_depth = playout_depth
        self._root = _Node(None, 0.0, -1, None)
        self._root.pending = False
        self._root.pending_desc = 0
        self._cursor: Optional[_Node] = self._root
        #: (id(item), node) of the most recent pop — drivers reward a
        #: popped item before the next pop, so one slot suffices
        self._last: Optional[tuple] = None
        self._visits: Dict[int, int] = {}    #: fetch-PC pop counts
        self._proximity: Dict[int, tuple] = {}  #: playout cache per PC
        self._seq = 0
        self._len = 0

    # -- the frontier protocol ----------------------------------------------

    def push(self, item: Any) -> None:
        parent = self._cursor if self._cursor is not None else self._root
        node = _Node(parent, self._prior(item), self._seq, item)
        self._seq += 1
        parent.children.append(node)
        walk = parent
        while walk is not None:
            walk.pending_desc += 1
            walk = walk.parent
        self._len += 1

    def pop(self) -> Any:
        if self._len == 0:
            raise IndexError("pop from empty frontier")
        node = self._root
        while not node.pending:
            node = max((c for c in node.children if c.pending_desc > 0),
                       key=self._selection_key)
        item = node.item
        # Why this leaf won, for tracing drivers: its playout prior and
        # its full UCT score at selection time (the root is never
        # pending, so every popped node has a parent for the score).
        self.last_pop_info = {"prior": node.prior,
                              "uct": self._selection_key(node)[0]}
        node.item = None
        node.pending = False
        walk = node
        while walk is not None:
            walk.pending_desc -= 1
            walk = walk.parent
        self._cursor = node
        self._last = (id(item), node)
        pc = self.pc_of(item) if self.pc_of is not None else None
        if pc is not None:
            self._visits[pc] = self._visits.get(pc, 0) + 1
        self._len -= 1
        return item

    def reward(self, item: Any, hit: bool) -> None:
        """Back-propagate a completed path's outcome up its fork chain.

        Both outcomes are evidence: a hit adds reward mass, a miss adds
        a visit — so a subtree only decays once paths through it
        actually *complete without paying*, never merely for being
        walked.  Before any path completes every score is its prior and
        ties break depth-first; the bandit takes over as evidence
        arrives.
        """
        if self._last is None or self._last[0] != id(item):
            return
        node = self._last[1]
        while node is not None:
            if hit:
                node.hits += 1.0
            else:
                node.visits += 1
            node = node.parent

    def __len__(self) -> int:
        return self._len

    # -- UCT scoring ---------------------------------------------------------

    def _selection_key(self, node: _Node):
        parent = node.parent
        q = (node.hits + node.prior) / (node.visits + 1.0)
        u = self.exploration * math.sqrt(
            math.log(parent.visits + 1.0) / (node.visits + 1.0))
        return (q + u, node.seq)

    # -- playout priors ------------------------------------------------------

    def _prior(self, item: Any) -> float:
        """Cheap playout signals blended into [0, 1]; items without a
        machine configuration (the symbolic replay pushes tree-node
        pairs) degrade to the novelty term alone.

        The transmit term prefers, in order: an arm whose reorder
        buffer already holds a tainted transmitter *and* whose fetch
        has run off the program (nothing left to fetch — the backlog,
        tainted transmitter included, executes next); a tainted
        transmitter still behind further fetches; then the static
        tainted-load-proximity playout.
        """
        pc = self.pc_of(item) if self.pc_of is not None else None
        novelty = (1.0 / (1.0 + self._visits.get(pc, 0))
                   if pc is not None else 1.0)
        config = getattr(item, "config", None)
        if config is None:
            return novelty
        window = min(1.0, len(config.buf) / 8.0)
        inflight = self._inflight(config)
        if self._pending_transmitter(config, inflight):
            draining = (self.program is not None and pc is not None
                        and self.program.get(pc) is None)
            transmit = 1.0 if draining else 0.75
        else:
            transmit = self._load_proximity(pc, config, inflight)
        return (2.0 * transmit + window + novelty) / 4.0

    def _inflight(self, config) -> Dict[Any, Any]:
        """Register renaming over the reorder buffer: the newest
        in-flight value (resolved ``TValue``, or an alias-predicted
        load's forwarded value) each register will hold, keyed by
        :class:`~repro.core.values.Reg`.  Architectural ``regs`` are the
        fallback for registers with no entry."""
        inflight: Dict[Any, Any] = {}
        for _index, entry in config.buf.items():
            if isinstance(entry, TValue):
                inflight[entry.dest] = entry.value
            elif isinstance(entry, TLoad) and entry.pred is not None:
                inflight[entry.dest] = entry.pred[0]
        return inflight

    def _resolve_label(self, arg, config, inflight):
        """The security label ``arg`` currently evaluates to, looking
        through in-flight values before the architectural registers."""
        if hasattr(arg, "name"):
            value = inflight.get(arg)
            if value is None:
                value = config.regs.get(arg)
            return getattr(value, "label", None)
        return getattr(arg, "label", None)

    def _pending_transmitter(self, config, inflight) -> bool:
        """Does the reorder buffer hold an unexecuted observation
        producer (load/store address, branch condition, indirect-jump
        target) whose operands resolve to a secret-labelled value?
        Executing that entry emits a secret-dependent observation —
        this arm is in the middle of transmitting."""
        for _index, entry in config.buf.items():
            if isinstance(entry, (TBr, TJmpi, TLoad)):
                args = entry.args
            elif isinstance(entry, TStore) and entry.addr is None:
                args = entry.args
            else:
                continue
            for arg in args:
                label = self._resolve_label(arg, config, inflight)
                if label is not None and not label.is_public():
                    return True
        return False

    def _load_proximity(self, pc: Optional[int], config,
                        inflight=None) -> float:
        """How close the nearest ``load`` is to this fetch PC, on the
        static successor graph, within ``playout_depth`` instructions.

        A load at distance ``d`` scores ``0.5 * (1 - d / (depth + 1))``;
        the score is boosted (saturating at 1) when the load's operands
        currently hold secret-labelled values — the arm is about to
        transmit.  Untainted loads still count at the base weight: the
        secret may arrive in a register between now and the load's
        execution.
        """
        program = self.program
        if program is None or pc is None:
            return 0.0
        if pc in self._proximity:
            distance, load_pc = self._proximity[pc]
        else:
            distance, load_pc = self._nearest_load(pc)
            self._proximity[pc] = (distance, load_pc)
        if load_pc is None:
            return 0.0
        score = 0.5 * (1.0 - distance / (self.playout_depth + 1.0))
        if self._tainted(program.get(load_pc), config, inflight or {}):
            score = min(1.0, 4.0 * score)
        return score

    def _nearest_load(self, pc: int):
        """(distance, pc) of the closest reachable ``load``; breadth-
        first over static successors so the distance is minimal."""
        program = self.program
        frontier = [(pc, 0)]
        seen = {pc}
        while frontier:
            next_frontier = []
            for pp, d in frontier:
                instr = program.get(pp)
                if instr is None:
                    continue
                if isinstance(instr, Load):
                    return d, pp
                if d < self.playout_depth:
                    for succ in _successors(instr):
                        if succ not in seen:
                            seen.add(succ)
                            next_frontier.append((succ, d + 1))
            frontier = next_frontier
        return None, None

    def _tainted(self, instr, config, inflight) -> bool:
        """Will the load's operands carry a non-public label? — checking
        in-flight reorder-buffer values first, then the architectural
        registers."""
        if not isinstance(instr, Load):
            return False
        for arg in instr.args:
            label = self._resolve_label(arg, config, inflight)
            if label is not None and not label.is_public():
                return True
        return False


register_strategy(MCTSFrontier)
