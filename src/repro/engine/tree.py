"""The exploration fork tree — shared prefixes made explicit.

Definition B.18's tool schedules are enumerated by a DFS whose forks
give the schedule *set* a trie structure: two schedules are identical
up to the fork that separated them.  The seed pipeline threw that
structure away (``enumerate_schedules`` returned a flat list) and the
symbolic back end re-executed every schedule from step 0.

:class:`ScheduleTree` keeps the fork structure: one :class:`TreeNode`
per distinct schedule prefix, children in first-enumeration order, and
the enumeration's payload (one per complete schedule, e.g. the
explorer's recorded path) attached to the node where its schedule ends.
A tree walk then visits every shared prefix exactly once — the
"resume from the deepest shared prefix" primitive the symbolic replay
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.directives import Directive, Schedule

__all__ = ["TreeNode", "ScheduleTree"]


@dataclass
class TreeNode:
    """One distinct schedule prefix.

    ``children`` preserves first-enumeration order (insertion-ordered
    dict).  ``leaf_indices`` lists the positions (in enumeration order)
    of the schedules that end exactly here — normally one, but
    duplicate schedules reached through different internal choices each
    keep their own slot.  ``leaves`` counts schedule endpoints at or
    below this node; a walk uses it to know how many naive replays one
    shared step stands in for.
    """

    directive: Optional[Directive] = None     #: edge into this node (root: None)
    children: Dict[Directive, "TreeNode"] = field(default_factory=dict)
    leaf_indices: List[int] = field(default_factory=list)
    leaves: int = 0

    def walk(self) -> Iterator["TreeNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()


class ScheduleTree:
    """A trie over an enumerated schedule family, with per-leaf payloads.

    Built via :meth:`from_paths` from ``(schedule, payload)`` pairs in
    enumeration order; ``payloads[i]`` belongs to ``schedules[i]``.
    """

    def __init__(self, root: TreeNode, schedules: Tuple[Schedule, ...],
                 payloads: Tuple[object, ...], truncated: bool = False,
                 engine_stats: Optional[object] = None):
        self.root = root
        self.schedules = schedules
        self.payloads = payloads
        self.truncated = truncated
        #: :class:`~repro.engine.core.EngineStats` of the enumeration
        #: that produced this tree, when known.
        self.engine_stats = engine_stats

    @classmethod
    def from_paths(cls, paths: Iterable[Tuple[Schedule, object]],
                   truncated: bool = False,
                   engine_stats: Optional[object] = None) -> "ScheduleTree":
        root = TreeNode()
        schedules: List[Schedule] = []
        payloads: List[object] = []
        for index, (schedule, payload) in enumerate(paths):
            schedules.append(tuple(schedule))
            payloads.append(payload)
            node = root
            node.leaves += 1
            for d in schedule:
                child = node.children.get(d)
                if child is None:
                    child = TreeNode(d)
                    node.children[d] = child
                child.leaves += 1
                node = child
            node.leaf_indices.append(index)
        return cls(root, tuple(schedules), tuple(payloads), truncated,
                   engine_stats)

    # -- measures ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.schedules)

    def edges(self) -> int:
        """Distinct schedule steps — what a prefix-shared walk executes."""
        return sum(1 for node in self.root.walk()) - 1

    def naive_steps(self) -> int:
        """Schedule steps a from-scratch replay of every schedule runs."""
        return sum(len(s) for s in self.schedules)

    def shared_steps(self) -> int:
        """Steps a prefix-shared walk avoids relative to naive replay."""
        return self.naive_steps() - self.edges()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ScheduleTree({len(self.schedules)} schedules, "
                f"{self.edges()} edges, naive {self.naive_steps()})")
