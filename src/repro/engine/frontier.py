"""Pluggable search frontiers — exploration order as a strategy.

Definition B.18's tool-schedule set DT(n) is a tree: the scheduler's
choice points fork, everything else is forced.  *Which* leaf is reached
next is irrelevant to soundness — Theorem B.20 quantifies over the whole
family — so the visit order is a free parameter.  The seed explorer
hardcoded a LIFO stack (depth-first); this module turns that stack into
a :class:`Frontier` the driver pushes fork arms into and pops the next
state from, with the ordering policy supplied by name:

``dfs``
    LIFO — the seed behaviour, byte-identical path enumeration order.
``bfs``
    FIFO — breadth-first over fork levels; surfaces shallow violations
    before deep speculation chains.
``random``
    Uniform random pops from a seeded RNG — deterministic for a fixed
    ``seed``, decorrelated from program structure (the classic fuzzing
    baseline).
``coverage``
    Coverage-guided: states whose next fetch PC has been popped least
    often come first (a min-heap on the visit count at push time, FIFO
    among ties).  This is the MCTS-lite flavour of Legion/AFL-style
    schedulers: it pours effort into unvisited program regions first
    instead of exhausting one subtree's speculation interleavings.

Every strategy explores the *same* set when run to completion — only
the order (and therefore which paths survive a ``max_paths`` cap, and
how fast ``stop_at_first`` fires) changes.  The frontier is generic
over items: the Pitchfork explorer pushes
:class:`~repro.engine.state.MachineState` values, the symbolic replay
pushes ``(tree node, worlds)`` pairs.  Strategies that rank by program
location receive a ``pc_of`` callable mapping an item to its current
fetch PC.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple,
                    Type)

__all__ = ["Frontier", "DepthFirstFrontier", "BreadthFirstFrontier",
           "RandomFrontier", "CoverageFrontier", "available_strategies",
           "make_frontier"]


class Frontier:
    """The pending-work set of one exploration.

    A driver ``push``es every fork arm and ``pop``s the next state to
    advance; the subclass decides the order.  All implementations are
    deterministic: two runs with the same pushes (and the same ``seed``)
    pop in the same order.
    """

    strategy: str = ""

    def __init__(self, seed: int = 0,
                 pc_of: Optional[Callable[[Any], Optional[int]]] = None):
        self.seed = seed
        self.pc_of = pc_of

    def push(self, item: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Any:
        """The next item to advance; IndexError when empty."""
        raise NotImplementedError

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.push(item)

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} |{len(self)}|>"


class DepthFirstFrontier(Frontier):
    """LIFO — the seed explorer's stack, byte-identical visit order."""

    strategy = "dfs"

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._items: List[Any] = []

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


class BreadthFirstFrontier(Frontier):
    """FIFO — explore fork levels in generation order."""

    strategy = "bfs"

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._items: deque = deque()

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class RandomFrontier(Frontier):
    """Seeded uniform random pops (swap-with-last removal, O(1))."""

    strategy = "random"

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._rng = random.Random(seed)
        self._items: List[Any] = []

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        items = self._items
        if not items:
            raise IndexError("pop from empty frontier")
        i = self._rng.randrange(len(items))
        items[i], items[-1] = items[-1], items[i]
        return items.pop()

    def __len__(self) -> int:
        return len(self._items)


class CoverageFrontier(Frontier):
    """Prioritize arms whose fetch PC has been visited least.

    The score of an item is the number of times its PC (via ``pc_of``)
    had already been *popped* when the item was pushed; a min-heap pops
    the lowest score first, FIFO among ties.  Scores are not re-ranked
    after insertion — the one-shot ranking is the cheap MCTS-lite
    approximation, not a full bandit — but every pop feeds the visit
    counts, so arms pushed later are steered away from saturated PCs.
    Items without a PC (``pc_of`` absent or returning None) score 0.
    """

    strategy = "coverage"

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0
        self._visits: Dict[int, int] = {}

    def _pc(self, item: Any) -> Optional[int]:
        return self.pc_of(item) if self.pc_of is not None else None

    def push(self, item: Any) -> None:
        pc = self._pc(item)
        score = self._visits.get(pc, 0) if pc is not None else 0
        heapq.heappush(self._heap, (score, self._seq, item))
        self._seq += 1

    def pop(self) -> Any:
        if not self._heap:
            raise IndexError("pop from empty frontier")
        _score, _seq, item = heapq.heappop(self._heap)
        pc = self._pc(item)
        if pc is not None:
            self._visits[pc] = self._visits.get(pc, 0) + 1
        return item

    def __len__(self) -> int:
        return len(self._heap)


_STRATEGIES: Dict[str, Type[Frontier]] = {
    cls.strategy: cls
    for cls in (DepthFirstFrontier, BreadthFirstFrontier, RandomFrontier,
                CoverageFrontier)
}


def available_strategies() -> Tuple[str, ...]:
    """Registered search-strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def make_frontier(strategy: str = "dfs", seed: int = 0,
                  pc_of: Optional[Callable[[Any], Optional[int]]] = None
                  ) -> Frontier:
    """Instantiate a frontier by strategy name."""
    try:
        cls = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown search strategy {strategy!r}; "
                         f"available: {list(available_strategies())}") \
            from None
    return cls(seed=seed, pc_of=pc_of)
