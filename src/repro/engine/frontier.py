"""Pluggable search frontiers — exploration order as a strategy.

Definition B.18's tool-schedule set DT(n) is a tree: the scheduler's
choice points fork, everything else is forced.  *Which* leaf is reached
next is irrelevant to soundness — Theorem B.20 quantifies over the whole
family — so the visit order is a free parameter.  The seed explorer
hardcoded a LIFO stack (depth-first); this module turns that stack into
a :class:`Frontier` the driver pushes fork arms into and pops the next
state from, with the ordering policy supplied by name:

``dfs``
    LIFO — the seed behaviour, byte-identical path enumeration order.
``bfs``
    FIFO — breadth-first over fork levels; surfaces shallow violations
    before deep speculation chains.
``random``
    Uniform random pops from a seeded RNG — deterministic for a fixed
    ``seed``, decorrelated from program structure (the classic fuzzing
    baseline).
``coverage``
    Coverage-guided: states whose next fetch PC has been popped least
    often come first (a min-heap on the visit count at push time, FIFO
    among ties).  This is the MCTS-lite flavour of Legion/AFL-style
    schedulers: it pours effort into unvisited program regions first
    instead of exhausting one subtree's speculation interleavings.
``mcts``
    Best-first violation hunting: full UCT bandit over the fork trie,
    re-ranked on every pop, with playout priors and back-propagated
    violation rewards.  Lives in :mod:`repro.engine.mcts` and registers
    itself here via :func:`register_strategy`.

Every strategy explores the *same* set when run to completion — only
the order (and therefore which paths survive a ``max_paths`` cap, and
how fast ``stop_at_first`` fires) changes.  The frontier is generic
over items: the Pitchfork explorer pushes
:class:`~repro.engine.state.MachineState` values, the symbolic replay
pushes ``(tree node, worlds)`` pairs.  Strategies that rank by program
location receive a ``pc_of`` callable mapping an item to its current
fetch PC.

Drivers may report path outcomes back through :meth:`Frontier.reward`;
ordering strategies that learn from outcomes (``mcts``) use it, the
rest inherit the no-op.  Strategy-specific constructor knobs are
declared in the class's ``knobs`` tuple and forwarded by
:func:`make_frontier` only when the caller supplies them, so generic
drivers need no per-strategy code.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple,
                    Type)

__all__ = ["Frontier", "DepthFirstFrontier", "BreadthFirstFrontier",
           "RandomFrontier", "CoverageFrontier", "available_strategies",
           "make_frontier", "register_strategy", "strategy_descriptions"]


class Frontier:
    """The pending-work set of one exploration.

    A driver ``push``es every fork arm and ``pop``s the next state to
    advance; the subclass decides the order.  All implementations are
    deterministic: two runs with the same pushes (and the same ``seed``)
    pop in the same order.
    """

    strategy: str = ""
    #: One-line summary shown by ``repro list``.
    description: str = ""
    #: Extra constructor kwargs :func:`make_frontier` may forward.
    knobs: Tuple[str, ...] = ()
    #: Why the most recent :meth:`pop` chose its item, as a small dict
    #: of scores — ``None`` for fixed orderings.  Ranking strategies
    #: (``mcts``) fill it; a tracing driver attaches it to the pop's
    #: span.  Valid until the next pop.
    last_pop_info: Optional[Dict[str, float]] = None

    def __init__(self, seed: int = 0,
                 pc_of: Optional[Callable[[Any], Optional[int]]] = None):
        self.seed = seed
        self.pc_of = pc_of

    def push(self, item: Any) -> None:
        raise NotImplementedError

    def pop(self) -> Any:
        """The next item to advance; IndexError when empty."""
        raise NotImplementedError

    def reward(self, item: Any, hit: bool) -> None:
        """Feedback hook: the driver finished exploring a popped item's
        path; ``hit`` is whether the path produced a violation.  Fixed
        orderings ignore it; learning strategies back-propagate it."""

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.push(item)

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} |{len(self)}|>"


class DepthFirstFrontier(Frontier):
    """LIFO — the seed explorer's stack, byte-identical visit order."""

    strategy = "dfs"
    description = ("depth-first (LIFO) — the default; exhausts one "
                   "speculation subtree before the next")

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._items: List[Any] = []

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


class BreadthFirstFrontier(Frontier):
    """FIFO — explore fork levels in generation order."""

    strategy = "bfs"
    description = ("breadth-first (FIFO) — surfaces shallow violations "
                   "before deep speculation chains")

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._items: deque = deque()

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class RandomFrontier(Frontier):
    """Seeded uniform random pops (swap-with-last removal, O(1))."""

    strategy = "random"
    description = ("seeded uniform-random pops — deterministic per "
                   "--seed, decorrelated from program structure")

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._rng = random.Random(seed)
        self._items: List[Any] = []

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        items = self._items
        if not items:
            raise IndexError("pop from empty frontier")
        i = self._rng.randrange(len(items))
        items[i], items[-1] = items[-1], items[i]
        return items.pop()

    def __len__(self) -> int:
        return len(self._items)


class CoverageFrontier(Frontier):
    """Prioritize arms whose fetch PC has been visited least.

    The score of an item is the number of times its PC (via ``pc_of``)
    had already been *popped* when the item was pushed; a min-heap pops
    the lowest score first, FIFO among ties.  Scores are not re-ranked
    after insertion — the one-shot ranking is the cheap MCTS-lite
    approximation, not a full bandit — but every pop feeds the visit
    counts, so arms pushed later are steered away from saturated PCs.
    Items without a PC (``pc_of`` absent or returning None) score 0.
    """

    strategy = "coverage"
    description = ("coverage-guided min-heap — least-visited fetch PC "
                   "first, ranked once at push time")

    def __init__(self, seed: int = 0, pc_of=None):
        super().__init__(seed, pc_of)
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0
        self._visits: Dict[int, int] = {}

    def _pc(self, item: Any) -> Optional[int]:
        return self.pc_of(item) if self.pc_of is not None else None

    def push(self, item: Any) -> None:
        pc = self._pc(item)
        score = self._visits.get(pc, 0) if pc is not None else 0
        heapq.heappush(self._heap, (score, self._seq, item))
        self._seq += 1

    def pop(self) -> Any:
        if not self._heap:
            raise IndexError("pop from empty frontier")
        _score, _seq, item = heapq.heappop(self._heap)
        pc = self._pc(item)
        if pc is not None:
            self._visits[pc] = self._visits.get(pc, 0) + 1
        return item

    def __len__(self) -> int:
        return len(self._heap)


_STRATEGIES: Dict[str, Type[Frontier]] = {
    cls.strategy: cls
    for cls in (DepthFirstFrontier, BreadthFirstFrontier, RandomFrontier,
                CoverageFrontier)
}


def register_strategy(cls: Type[Frontier]) -> Type[Frontier]:
    """Register a Frontier subclass under its ``strategy`` name.

    Lets strategies living outside this module (``repro.engine.mcts``)
    plug in without a circular import; importing ``repro.engine``
    registers everything.  Usable as a class decorator.
    """
    if not cls.strategy:
        raise ValueError(f"{cls.__name__} has no strategy name")
    _STRATEGIES[cls.strategy] = cls
    return cls


def available_strategies() -> Tuple[str, ...]:
    """Registered search-strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def strategy_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered strategy,
    in sorted name order (what ``repro list`` prints)."""
    return {name: _STRATEGIES[name].description
            for name in available_strategies()}


def make_frontier(strategy: str = "dfs", seed: int = 0,
                  pc_of: Optional[Callable[[Any], Optional[int]]] = None,
                  **extras: Any) -> Frontier:
    """Instantiate a frontier by strategy name.

    ``extras`` are strategy-specific knobs (``program``, ``exploration``,
    ``playout_depth`` for ``mcts``); each is forwarded only when the
    class declares it in ``knobs`` and the value is not None, so callers
    can pass the full knob set unconditionally.
    """
    try:
        cls = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown search strategy {strategy!r}; "
                         f"available: {list(available_strategies())}") \
            from None
    kwargs = {name: value for name, value in extras.items()
              if name in cls.knobs and value is not None}
    return cls(seed=seed, pc_of=pc_of, **kwargs)
