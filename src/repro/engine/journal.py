"""Persistent append-only logs (the engine's cons-lists).

Exploration states carry three growing sequences — the directive
schedule, the observation trace, and the violation list.  The seed
implementation copied all three as Python lists at every DFS fork, an
O(length) cost paid once per fork arm.  :class:`Log` replaces them with
a parent-pointer ("cons") list:

* ``append``/``extend`` are O(1): they allocate one node pointing back
  at the previous log;
* forking a state is O(1): both arms simply keep the same node and
  diverge from there, sharing the whole common prefix;
* ``materialize`` walks the parent chain once to rebuild the tuple, and
  caches it on the node, so a log that is read repeatedly (e.g. the
  schedule of a completed path) pays the walk only once.

Logs are immutable and hash-free by design; they are plumbing for the
execution engine, not part of the paper's semantics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

__all__ = ["Log", "EMPTY_LOG"]


class Log:
    """An immutable append-only sequence with O(1) append and fork."""

    __slots__ = ("_parent", "_item", "_length", "_cache")

    def __init__(self, parent: Optional["Log"] = None, item: object = None):
        self._parent = parent
        self._item = item
        self._length = (parent._length + 1) if parent is not None else 0
        self._cache: Optional[Tuple] = None  # materialized prefix

    # -- growth (all O(1)) --------------------------------------------------

    def append(self, item: object) -> "Log":
        """A new log equal to this one plus ``item``."""
        return Log(self, item)

    def extend(self, items: Iterable[object]) -> "Log":
        """A new log equal to this one plus each of ``items`` in order."""
        node = self
        for item in items:
            node = Log(node, item)
        return node

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def materialize(self) -> Tuple:
        """The log's contents as a tuple (cached on this node).

        Cost is O(distance to the nearest already-materialized
        ancestor); repeated calls are O(1).
        """
        if self._cache is not None:
            return self._cache
        # Walk back to a cached ancestor (or the root), then rebuild.
        chain = []
        node: Optional[Log] = self
        prefix: Tuple = ()
        while node is not None and node._length > 0:
            if node._cache is not None:
                prefix = node._cache
                break
            chain.append(node._item)
            node = node._parent
        out = prefix + tuple(reversed(chain))
        self._cache = out
        return out

    def __iter__(self) -> Iterator:
        return iter(self.materialize())

    def last(self) -> object:
        """The most recently appended item."""
        if self._length == 0:
            raise IndexError("empty log")
        return self._item

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Log(len={self._length})"


#: The shared empty log — the root every exploration grows from.
EMPTY_LOG = Log()
