"""The unified execution core every driver steps through.

:class:`ExecutionEngine` wraps a :class:`~repro.core.machine.Machine`
and is a drop-in replacement for it wherever a driver only needs
``step``/``enabled_directives``/``program``/``evaluator`` — the
Explorer, the symbolic runner, the sequential runner, the SCT two-trace
product and the metatheory checks all accept either.  On top of the raw
small-step relation it adds:

* **step accounting** (:class:`EngineStats`): how many times the
  machine relation was actually evaluated, how many forks the driver
  took, and how many steps were *reused* — served from a snapshot or a
  shared prefix instead of being re-executed;
* **a trial-step cache**: schedulers like Definition B.18 trial-step a
  directive to ask "is this enabled here?" and then immediately commit
  the same step.  Configurations are immutable, and for a *pure*
  evaluator (no hidden state — see ``Evaluator.pure``) the step
  relation is a function of ``(configuration, directive)`` (Theorem
  B.1, determinism), so the engine remembers the trial's successor and
  hands it back on commit instead of re-running the rule.

The cache is keyed on the configuration's *structural hash* (cached on
the configuration and computed incrementally by its components, so a
key costs an int lookup) with a full-equality confirm on the pinned
configuration at hit time.  Structural keying is sound for the same
reason the cache exists at all — the pure step relation is a function
of the configuration's *value* (Theorem B.1) — and it is what lets
sibling branches share trials: two arms that converge on equal
configurations hit each other's entries and receive the *same*
successor object, so their downstream states compare by pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import Config
from ..core.directives import Directive, Execute
from ..core.errors import StuckError
from ..core.machine import Machine
from ..core.observations import StepLeakage

__all__ = ["EngineStats", "ExecutionEngine"]

#: Entries kept in the trial-step cache before it is cleared wholesale.
#: A trial and its commit are at most one scheduler decision apart (a
#: decision trial-steps a handful of arms, then applies one), so a tiny
#: bound retains nearly every useful hit while keeping pinned
#: configurations — and allocation churn — negligible.
_CACHE_LIMIT = 512


@dataclass
class EngineStats:
    """Counters exposing the engine's work (and the work it avoided)."""

    steps: int = 0          #: machine step rules actually evaluated
    cache_hits: int = 0     #: commits/trials served from the step cache
    stuck_hits: int = 0     #: cached "this directive is stuck here" answers
    forks: int = 0          #: fork points the driver took
    reused: int = 0         #: steps resumed from snapshots / shared prefixes
    states_subsumed: int = 0  #: fork arms pruned by the SeenStates table
    # Time-to-first-violation, recorded once by the driver when the
    # first violating path completes.  Pops and steps are deterministic
    # (strategy-comparable without external timing); wall time is the
    # driver clock's best effort.  None until/unless a violation is hit.
    first_violation_pops: Optional[int] = None
    first_violation_steps: Optional[int] = None
    first_violation_wall: Optional[float] = None

    def snapshot(self) -> "EngineStats":
        return EngineStats(self.steps, self.cache_hits, self.stuck_hits,
                           self.forks, self.reused, self.states_subsumed,
                           self.first_violation_pops,
                           self.first_violation_steps,
                           self.first_violation_wall)

    def record_first_violation(self, pops: int, steps: int,
                               wall: float) -> None:
        """Latch the first-violation point; later calls are ignored."""
        if self.first_violation_steps is None:
            self.first_violation_pops = pops
            self.first_violation_steps = steps
            self.first_violation_wall = wall

    def merge(self, other: Optional["EngineStats"]) -> "EngineStats":
        """Counter-wise sum (sharded explorations merge shard engines).

        The first-violation triple adopts the minimum keyed on machine
        steps — the deterministic counter — so a sharded merge reports
        the cheapest shard-local first hit regardless of merge order.
        """
        if other is None:
            return self
        self.steps += other.steps
        self.cache_hits += other.cache_hits
        self.stuck_hits += other.stuck_hits
        self.forks += other.forks
        self.reused += other.reused
        self.states_subsumed += other.states_subsumed
        if other.first_violation_steps is not None and (
                self.first_violation_steps is None
                or other.first_violation_steps < self.first_violation_steps):
            self.first_violation_pops = other.first_violation_pops
            self.first_violation_steps = other.first_violation_steps
            self.first_violation_wall = other.first_violation_wall
        return self

    @property
    def avoided(self) -> int:
        """Total step evaluations the engine did *not* have to run."""
        return self.cache_hits + self.stuck_hits + self.reused


class ExecutionEngine:
    """A counting, caching front end over one machine.

    Drop-in for :class:`~repro.core.machine.Machine` in every driver
    that steps configurations (``step`` raises :class:`StuckError`
    exactly like the machine does).
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.stats = EngineStats()
        # (hash(config), directive) -> (pinned config, (config', leak) | None);
        # the pinned configuration is equality-confirmed on every hit,
        # so hash collisions can only cost a miss, never a wrong answer.
        self._cache: Dict[Tuple[int, Directive], Tuple[Config, object]] = {}
        self._cacheable = getattr(machine.evaluator, "pure", False)

    # -- Machine facade -----------------------------------------------------

    @property
    def program(self):
        return self.machine.program

    @property
    def evaluator(self):
        return self.machine.evaluator

    @property
    def rsb_policy(self) -> str:
        return self.machine.rsb_policy

    def enabled_directives(self, config: Config,
                           jmpi_candidates: Iterable[int] = ()):
        return self.machine.enabled_directives(config, jmpi_candidates)

    # -- stepping -----------------------------------------------------------

    def step(self, config: Config,
             directive: Directive) -> Tuple[Config, StepLeakage]:
        """``C ↪_d^o C'`` with accounting; raises StuckError as usual."""
        if not self._cacheable or type(directive) is not Execute:
            # Only execute directives are ever trial-stepped before
            # being committed; fetch/retire steps would fill (and
            # churn) the cache without any chance of a hit.
            self.stats.steps += 1
            return self.machine.step(config, directive)
        key = (hash(config), directive)
        hit = self._cache.get(key)
        if hit is not None and (hit[0] is config or hit[0] == config):
            if hit[1] is None:
                self.stats.stuck_hits += 1
                raise StuckError(f"directive {directive!r} is stuck here "
                                 f"(cached)", directive)
            self.stats.cache_hits += 1
            return hit[1]
        self.stats.steps += 1
        if len(self._cache) >= _CACHE_LIMIT:
            self._cache.clear()
        try:
            result = self.machine.step(config, directive)
        except StuckError:
            self._cache[key] = (config, None)
            raise
        self._cache[key] = (config, result)
        return result

    def try_step(self, config: Config, directive: Directive
                 ) -> Optional[Tuple[Config, StepLeakage]]:
        """The step's result, or None if the directive is stuck here."""
        try:
            return self.step(config, directive)
        except StuckError:
            return None

    def can(self, config: Config, directive: Directive) -> bool:
        """Is ``directive`` enabled at ``config``?"""
        return self.try_step(config, directive) is not None

    # -- explicit accounting hooks -----------------------------------------

    def count_fork(self, arms: int = 1) -> None:
        """Record that a driver forked into ``arms`` branches."""
        self.stats.forks += arms

    def count_reused(self, steps: int = 1) -> None:
        """Record ``steps`` resumed from a snapshot / shared prefix
        instead of being re-executed."""
        self.stats.reused += steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (f"ExecutionEngine(steps={s.steps}, hits={s.cache_hits}, "
                f"reused={s.reused})")
