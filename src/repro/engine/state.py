"""O(1)-fork execution states built on structural sharing.

A :class:`MachineState` is what one DFS arm of an exploration carries:
the machine configuration (already an immutable value — see
:class:`~repro.core.config.Config`) plus the three append-only logs
(schedule, trace, notes) as :class:`~repro.engine.journal.Log`
cons-lists, the per-path budget counters, and any small driver-local
scratch (delayed indices).

The seed Explorer copied three Python lists and a set at every fork;
:meth:`fork` here copies five references and one small set.  The logs
materialize back into tuples only when a path completes, so a fork that
is quickly pruned never pays for its prefix at all.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from ..core.config import Config
from .journal import EMPTY_LOG, Log

__all__ = ["MachineState"]


class MachineState:
    """One in-flight exploration state with O(1) fork.

    Mutable *between* forks (a driver advances it in place), constant
    time to fork: all history lives in shared persistent structures.
    """

    __slots__ = ("config", "schedule", "trace", "notes", "delayed",
                 "deferred", "sleep", "fetches", "steps", "exhausted",
                 "finished", "depth")

    def __init__(self, config: Config,
                 schedule: Log = EMPTY_LOG,
                 trace: Log = EMPTY_LOG,
                 notes: Log = EMPTY_LOG,
                 delayed: Optional[Set[int]] = None,
                 fetches: int = 0, steps: int = 0,
                 deferred: Optional[Set[int]] = None,
                 sleep: Optional[Set[tuple]] = None,
                 depth: int = 0):
        self.config = config
        self.schedule = schedule      #: Log of Directive
        self.trace = trace            #: Log of Observation
        self.notes = notes            #: Log of driver-specific records
        self.delayed = delayed if delayed is not None else set()
        #: store indices whose address resolution the raw-B.18 driver
        #: chose to defer (prune="none"'s explicit choice point)
        self.deferred = deferred if deferred is not None else set()
        #: sleep-set entries: outcomes covered by a sibling fork arm
        #: (see repro.engine.por) — a rollback landing on one ends the
        #: path
        self.sleep = sleep if sleep is not None else set()
        self.fetches = fetches
        self.steps = steps
        self.exhausted = False        #: a per-path budget was hit
        self.finished = False         #: cleanly pruned by the driver
        #: fork-tree depth (number of choice points above this arm) —
        #: driver bookkeeping for the search-telemetry fork-level
        #: histogram, never consulted by the semantics
        self.depth = depth

    def fork(self) -> "MachineState":
        """An independent state sharing all history with this one."""
        return MachineState(self.config, self.schedule, self.trace,
                            self.notes, set(self.delayed),
                            self.fetches, self.steps,
                            set(self.deferred), set(self.sleep),
                            self.depth)

    def residual_obligations(self):
        """What this state still owes the exploration, beyond its
        configuration: the driver-local scratch that determines which
        continuations the scheduler will generate from here.  Two
        states with equal configurations and equal obligations have
        identical futures (Theorem B.1 — the machine is deterministic
        and the scheduler is memoryless beyond these fields); the
        subsumption table (:mod:`repro.engine.subsume`) compares them
        component-wise under its weakening order instead of comparing
        this tuple directly.
        """
        return (frozenset(self.delayed), frozenset(self.deferred),
                frozenset(self.sleep), self.steps, self.fetches)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MachineState(pc={self.config.pc}, "
                f"|schedule|={len(self.schedule)}, steps={self.steps})")
