"""Redundant-state subsumption over the hash-consed state core.

Partial-order reduction (:mod:`repro.engine.por`) prunes equivalent
*schedules*; nothing there prunes equivalent *states*: two different
speculation prefixes that converge on the same machine configuration
head byte-identical continuations (Theorem B.1, determinism), yet each
is explored in full.  Loop-heavy targets (the Table 2 kernels) converge
constantly — every store-forwarding outcome whose transient provenance
has retired, every re-fetch of a loop body after a rolled-back
excursion — which is exactly why donna still truncates at higher
bounds.  This is the Bugrara-style "redundant state detection" angr
lists under HELPWANTED (up to 50× reported there).

:class:`SeenStates` is the table the explorer consults at fork points:

* **keying** — states are looked up by the configuration's *cached
  structural hash* (see ``core/{memory,rob,config}.py``: memories
  maintain their hash incrementally on write, buffers and configs
  memoise theirs), so a probe costs an int compare, not a state walk;
* **collision safety** — a bucket hit is confirmed by full structural
  equality before anything is pruned.  Hash equality is evidence, never
  proof: two distinct states in one bucket simply coexist;
* **hash-consing** — when a recorded bucket already holds an equal
  configuration, the newcomer is repointed at the canonical instance
  (:meth:`SeenStates.record`), so structurally-equal states downstream
  compare by pointer (``is``) and share one object graph;
* **the obligation-weakening rule** — a fork arm is pruned only when a
  recorded state has the *same or weaker residual obligations*
  (:meth:`SeenStates.subsumes`): equal pending hazards
  (``delayed``/``deferred``), a sleep set no larger than the
  candidate's (a smaller sleep set explores *more* rollback
  continuations), and per-path budgets no more spent (a state with more
  remaining budget explores *deeper*).  Under those conditions every
  observation the candidate's subtree could produce is produced by the
  canonical state's subtree, so dropping the candidate never drops a
  finding.

Soundness is differential-tested exactly like POR's: the observation
set must be identical with subsumption on and off across the litmus
registry and random programs, composing with every strategy, every
``--prune`` level, and sharding (``tests/test_subsume_equivalence.py``;
the ``BENCH_subsume.json`` CI gate re-checks findings identity on the
case studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = ["SeenStates", "SubsumptionStats", "validate_subsume"]


def validate_subsume(value: object) -> bool:
    """Validate a ``subsume=`` knob (strictly boolean, like a prune
    level it gates a soundness-sensitive reduction and silent coercion
    of e.g. ``"off"`` (truthy!) would enable what the caller asked to
    disable)."""
    if not isinstance(value, bool):
        raise ValueError(f"subsume must be a bool, got {value!r}")
    return value


@dataclass(frozen=True)
class SubsumptionStats:
    """Skip accounting for one exploration, surfaced like POR's
    :class:`~repro.engine.por.PruningStats`."""

    enabled: bool
    #: Fork-arm states recorded in the table (candidates for future
    #: subsumption).
    states_seen: int = 0
    #: Fork arms pruned because a recorded state subsumed them — each
    #: the root of a subtree that was never explored.
    states_subsumed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form for the unified :class:`repro.api.Report`."""
        return {"enabled": self.enabled,
                "states_seen": self.states_seen,
                "states_subsumed": self.states_subsumed}


#: One recorded state: (canonical config, delayed, deferred, sleep,
#: steps spent, fetches spent).  The sets are frozen *copies* — the
#: live MachineState mutates its own in place as it advances.
_Entry = Tuple[Any, frozenset, frozenset, frozenset, int, int]


class SeenStates:
    """Structural-hash table of explored fork-arm states.

    ``subsumes(state)`` asks whether a recorded state covers ``state``
    under the obligation-weakening rule; ``record(state)`` files a kept
    arm (canonicalising its configuration against the bucket).  Both
    are driven by :meth:`repro.pitchfork.explorer.Explorer.expand`; a
    sharded exploration keeps one table per shard and merges the
    counters (the table itself never crosses a process boundary).
    """

    __slots__ = ("_table", "states_seen", "states_subsumed")

    def __init__(self) -> None:
        self._table: Dict[int, List[_Entry]] = {}
        self.states_seen = 0
        self.states_subsumed = 0

    def __len__(self) -> int:
        return self.states_seen

    def subsumes(self, state) -> bool:
        """Is ``state`` covered by a recorded state with the same or
        weaker residual obligations?

        The rule, per component (candidate = ``state``, entry = the
        recorded state; the entry's subtree is — or is being — fully
        explored):

        * configurations structurally equal (full ``==`` confirm after
          the hash bucket match: collisions coexist, they never prune);
        * ``delayed``/``deferred`` equal — pending-hazard bookkeeping
          changes which arms the scheduler generates, so any difference
          means different continuations;
        * entry ``sleep`` ⊆ candidate ``sleep`` — sleep entries only
          *suppress* rollback continuations, so the entry explores a
          superset of the candidate's outcomes;
        * entry budgets spent ≤ candidate's — the entry had at least as
          much budget remaining, so it explored at least as deep.
        """
        bucket = self._table.get(hash(state.config))
        if not bucket:
            return False
        for config, delayed, deferred, sleep, steps, fetches in bucket:
            if (steps <= state.steps and fetches <= state.fetches
                    and delayed == state.delayed
                    and deferred == state.deferred
                    and sleep <= state.sleep
                    and config == state.config):
                self.states_subsumed += 1
                return True
        return False

    def record(self, state) -> None:
        """File a kept fork arm, hash-consing its configuration: if the
        bucket already holds an equal configuration, ``state`` is
        repointed at that canonical instance, so later equality checks
        against this subtree's descendants are pointer compares."""
        bucket = self._table.setdefault(hash(state.config), [])
        for entry in bucket:
            if entry[0] == state.config:
                state.config = entry[0]
                break
        bucket.append((state.config,) + state.residual_obligations())
        self.states_seen += 1

    def stats(self, enabled: bool = True) -> SubsumptionStats:
        return SubsumptionStats(enabled, self.states_seen,
                                self.states_subsumed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SeenStates({self.states_seen} seen, "
                f"{self.states_subsumed} subsumed)")
