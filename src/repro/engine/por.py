"""Independence-based partial-order reduction for the schedule tree.

Definition B.18's tool schedules DT(n) contain *families* of schedules
that are permutations of one another by swaps of adjacent, commuting
directives — Mazurkiewicz-equivalent interleavings that reach the same
configuration and produce the same observation multiset, so exploring
more than one representative per class is pure waste.  Two sources
dominate:

* **store-address deferral** (§4.1): "resolve the address now, or defer
  it" is a choice point for *every* store, but the two arms only differ
  observably when the store's address aliases an in-flight load — for
  every other store the arms commute with the rest of the schedule;
* **rollback joins**: the continuation after a misprediction or hazard
  rollback re-converges with the sibling arm that predicted (or
  forwarded) correctly — Theorem B.7-style determinism makes the two
  subtrees equivalent, so the rolled-back path's continuation is a
  duplicate whenever that sibling arm was generated at the same fork.

This module supplies the ingredients the drivers prune with:

* :func:`footprint` / :func:`independent` — the commutation relation
  over directive pairs: two directives are independent when their
  read/write footprints (ROB indices, register sources, memory cells,
  control state) are disjoint and neither can raise a hazard affecting
  the other, and both orders are enabled.  Swapping an independent
  adjacent pair in a schedule replays to the same final configuration
  and the same observations (checked, not just argued, by
  ``tests/test_por_independence.py``);
* **sleep-set entries** — ``("fwd", s, l)`` records that the outcome
  "store ``s`` forwards to load ``l``" is covered by a sibling arm;
  ``("redirect", i)`` records that the redirect outcome of the
  mispredicted control transfer at buffer index ``i`` is covered.  A
  path whose rollback lands on a sleeping outcome is *finished* at the
  rollback: the sibling arm explores the (equivalent) continuation.
  Entries are invalidated the moment a member index leaves the buffer
  (indices are reused after rollbacks and drains, see
  :class:`~repro.core.rob.ReorderBuffer`);
* :func:`hazard_load` — mirrors the machine's store-addr hazard scan so
  the driver can name the (store, load) pair a rollback was for;
* :class:`PruningStats` — classes explored / schedules skipped, merged
  across shards and surfaced in reports.

Pruning levels (:data:`PRUNE_LEVELS`), validated by
:func:`validate_prune`:

``none``
    Faithful Definition B.18: every store-address deferral is a real
    fork and rolled-back paths run to completion.  The unreduced
    baseline the differential suite and ``BENCH_por.json`` compare
    against.
``sleepset``
    The matching-store reduction (deferral forks only where the store
    may alias an in-flight load — the footprint-disjointness argument)
    plus branch-misprediction rollback joins.  This is the default, and
    byte-identical to the seed explorer's enumeration.
``full``
    ``sleepset`` plus speculation-window capping on every *covered*
    rollback: store-forwarding hazard joins, aliasing-prediction
    validation joins, and mispredicted jmpi/ret redirect joins, plus
    collapse of degenerate fork arms that step to identical
    configurations.

See DESIGN.md ("Partial-order reduction") for the soundness argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from ..core.config import Config
from ..core.directives import Directive, Execute, Fetch, Retire
from ..core.errors import ReproError
from ..core.isa import Call, Ret
from ..core.rob import resolve_operands
from ..core.transient import (TBr, TCallMarker, TFence, TJmpi, TJump, TLoad,
                              TOp, TRetMarker, TStore, TValue)
from ..core.values import BOTTOM, Reg

__all__ = ["PRUNE_LEVELS", "validate_prune", "PruningStats", "Footprint",
           "footprint", "independent", "hazard_load", "drop_dead_entries"]

#: The pruning levels, weakest reduction first.
PRUNE_LEVELS = ("none", "sleepset", "full")


def validate_prune(level: str) -> str:
    """Validate a pruning level, returning it."""
    if level not in PRUNE_LEVELS:
        raise ValueError(f"prune must be one of {list(PRUNE_LEVELS)}, "
                         f"got {level!r}")
    return level


@dataclass
class PruningStats:
    """What the reduction explored and what it skipped.

    ``classes_explored`` counts completed paths — with pruning on, each
    is the representative of one Mazurkiewicz class; ``schedules_skipped``
    counts pruned subtree roots (each a rollback join or a collapsed
    duplicate fork arm standing in for at least one whole schedule).
    """

    level: str = "sleepset"
    classes_explored: int = 0
    schedules_skipped: int = 0

    def to_dict(self) -> dict:
        return {"level": self.level,
                "classes_explored": self.classes_explored,
                "schedules_skipped": self.schedules_skipped}


# ---------------------------------------------------------------------------
# Footprints and the commutation relation
# ---------------------------------------------------------------------------

#: Footprint tokens:  ("pc",) control flow; ("size",) the buffer's
#: index frontier (fetch appends, retire pops — their order is a real
#: scheduling constraint); ("buf", i) one reorder-buffer entry;
#: ("reg", name) one architectural register; ("mem", a) one memory cell
#: *including its store-queue visibility* — a store-address resolution
#: writes the token for its cell so it conflicts with every load of the
#: same cell (forwarding and hazard detection are communication through
#: that cell, §3.4); ("rsb",) the return stack.
Token = Tuple


@dataclass(frozen=True)
class Footprint:
    """The read/write set of one directive at one configuration."""

    reads: FrozenSet[Token]
    writes: FrozenSet[Token]

    def conflicts(self, other: "Footprint") -> bool:
        """Write/write or read/write overlap — the dependency relation."""
        return bool(self.writes & other.writes
                    or self.writes & other.reads
                    or self.reads & other.writes)


def _operand_sources(config: Config, i: int, args) -> Optional[Set[Token]]:
    """Where the operands of buffer entry ``i`` come from: the youngest
    older buffer entry assigning each register, or the architectural
    register file.  None when an operand is still unresolved (the
    directive is not enabled, hence not analyzable)."""
    from ..core.transient import assigns
    tokens: Set[Token] = set()
    for arg in args:
        if not isinstance(arg, Reg):
            continue
        source = None
        for j in range(i - 1, config.buf.min_index() - 1, -1):
            entry = config.buf.get(j)
            if entry is not None and assigns(entry, arg):
                source = ("buf", j)
                break
        tokens.add(source if source is not None else ("reg", arg.name))
    return tokens


def _eventual_address(evaluator, config: Config, i: int,
                      args) -> Optional[int]:
    """The concrete address entry ``i``'s operands resolve to now."""
    try:
        vals = resolve_operands(config.buf, i, config.regs, args)
    except KeyError:
        return None
    if vals is None:
        return None
    try:
        return evaluator.concretize(evaluator.address(vals))
    except ReproError:
        return None


def footprint(machine, config: Config, d: Directive) -> Optional[Footprint]:
    """The directive's read/write footprint at this configuration.

    Returns None when the footprint cannot be determined (directive not
    applicable here, unresolved operands, symbolic addresses) — callers
    must treat that as "dependent on everything".

    The footprint encodes the hazard relation of §3.4 as data: a
    store-address resolution *writes* its cell token, a load *reads* its
    cell token, so a pair that could raise (or suppress) a forwarding
    hazard always conflicts.  A mispredicting branch/jmpi execution
    writes the pc and every younger buffer index (the squash).
    """
    evaluator = machine.evaluator
    buf = config.buf
    if isinstance(d, Fetch):
        reads: Set[Token] = {("pc",)}
        writes: Set[Token] = {("pc",), ("size",), ("buf", buf.max_index() + 1)}
        instr = machine.program.get(config.pc)
        if isinstance(instr, (Call, Ret)):
            writes.add(("rsb",))
            span = 3 if isinstance(instr, Call) else 4
            writes |= {("buf", buf.max_index() + 1 + k) for k in range(span)}
        return Footprint(frozenset(reads), frozenset(writes))

    if isinstance(d, Retire):
        if not buf:
            return None
        i = buf.min_index()
        entry = buf[i]
        reads = {("buf", i), ("size",)}
        writes = {("buf", i), ("size",)}
        if isinstance(entry, TValue):
            writes.add(("reg", entry.dest.name))
        elif isinstance(entry, TStore):
            if entry.addr is None:
                return None
            try:
                writes.add(("mem", evaluator.concretize(entry.addr)))
            except ReproError:
                return None
        elif isinstance(entry, TFence):
            # Retiring the oldest fence re-enables every younger execute
            # (the fence side condition reads the whole window).
            writes |= {("buf", j) for j in buf.indices()}
        elif isinstance(entry, (TCallMarker, TRetMarker)):
            span = 3 if isinstance(entry, TCallMarker) else 4
            for k in range(i, i + span):
                reads.add(("buf", k))
                writes.add(("buf", k))
                member = buf.get(k)
                if isinstance(member, TValue):
                    writes.add(("reg", member.dest.name))
                elif isinstance(member, TStore):
                    if member.addr is None:
                        return None
                    try:
                        writes.add(("mem", evaluator.concretize(member.addr)))
                    except ReproError:
                        return None
        elif not isinstance(entry, TJump):
            return None
        return Footprint(frozenset(reads), frozenset(writes))

    if not isinstance(d, Execute):
        return None
    i = d.index
    entry = buf.get(i)
    if entry is None:
        return None

    if isinstance(entry, TOp) and d.part is None:
        sources = _operand_sources(config, i, entry.args)
        if sources is None:
            return None
        return Footprint(frozenset(sources), frozenset({("buf", i)}))

    if isinstance(entry, TStore) and d.part == "value":
        sources = _operand_sources(config, i, (entry.src,))
        if sources is None:
            return None
        return Footprint(frozenset(sources), frozenset({("buf", i)}))

    if isinstance(entry, TStore) and d.part == "addr":
        sources = _operand_sources(config, i, entry.args)
        addr = _eventual_address(evaluator, config, i, entry.args)
        if sources is None or addr is None:
            return None
        # Writing the cell token makes this conflict with every load of
        # the same cell (forward visibility + the hazard scan) and with
        # other stores to it (forwarding priority).  A hazard here also
        # squashes younger entries; conservatively own them all.
        writes = {("buf", i), ("mem", addr)}
        writes |= {("buf", j) for j in buf.indices() if j > i}
        return Footprint(frozenset(sources), frozenset(writes))

    if isinstance(entry, TLoad):
        addr = _eventual_address(evaluator, config, i, entry.args)
        sources = _operand_sources(config, i, entry.args)
        if sources is None or addr is None:
            return None
        reads = set(sources) | {("mem", addr)}
        if d.part is None and entry.pred is None:
            return Footprint(frozenset(reads), frozenset({("buf", i)}))
        # Aliasing-predicted forms (§3.5): validation may roll back and
        # squash younger entries; guessed forwarding reads the source
        # store's entry.
        writes = {("buf", i)}
        if isinstance(d.part, int):
            reads.add(("buf", d.part))
        else:
            writes |= {("buf", j) for j in buf.indices() if j > i}
            writes.add(("pc",))
        return Footprint(frozenset(reads), frozenset(writes))

    if isinstance(entry, (TBr, TJmpi)) and d.part is None:
        sources = _operand_sources(config, i, entry.args)
        if sources is None:
            return None
        reads = set(sources)
        writes = {("buf", i)}
        mispredicted = True  # unknown ⇒ assume the worst (squash)
        try:
            vals = resolve_operands(buf, i, config.regs, entry.args)
        except KeyError:
            vals = None
        if vals is not None:
            try:
                if isinstance(entry, TBr):
                    cond = evaluator.evaluate(entry.opcode, vals)
                    taken = evaluator.truth(cond)
                    target = entry.targets[0] if taken else entry.targets[1]
                else:
                    target = evaluator.concretize(evaluator.address(vals))
                mispredicted = target != entry.guess
            except ReproError:
                mispredicted = True
        if mispredicted:
            writes.add(("pc",))
            writes.add(("rsb",))
            writes |= {("buf", j) for j in buf.indices() if j > i}
        return Footprint(frozenset(reads), frozenset(writes))

    return None


def independent(machine, config: Config, a: Directive,
                b: Directive) -> bool:
    """The commutation relation: may ``a`` and ``b`` swap at ``config``?

    True only when the footprints are disjoint *and* both orders are
    enabled — then ``a;b`` and ``b;a`` reach the same configuration and
    produce the same observations in swapped order (the commutation
    lemma, DESIGN.md).  Symmetric by construction; any pair with
    overlapping footprints (including a directive with itself) is
    dependent.
    """
    fa = footprint(machine, config, a)
    fb = footprint(machine, config, b)
    if fa is None or fb is None or fa.conflicts(fb):
        return False
    step = getattr(machine, "try_step", None)
    if step is None:                     # raw Machine: adapt
        from .core import ExecutionEngine
        machine = ExecutionEngine(machine)
        step = machine.try_step
    ab = step(config, a)
    ba = step(config, b)
    if ab is None or ba is None:
        return False
    return (step(ab[0], b) is not None
            and step(ba[0], a) is not None)


# ---------------------------------------------------------------------------
# Rollback-join helpers
# ---------------------------------------------------------------------------

def hazard_load(config: Config, store_index: int,
                addr: int) -> Optional[int]:
    """The load index a store-addr hazard rollback at ``store_index``
    (resolving to ``addr``) squashes — the machine's §3.4 scan, mirrored
    so the driver can name the (store, load) pair after the fact.
    ``config`` is the configuration *before* the store-addr step."""
    for k, entry in config.buf.items():
        if k <= store_index or not isinstance(entry, TValue):
            continue
        if not entry.is_load_result():
            continue
        jk, ak = entry.dep, entry.addr
        jk_lt_i = (jk is BOTTOM) or (jk < store_index)
        if (ak == addr and jk_lt_i) or (jk == store_index and ak != addr):
            return k
    return None


def drop_dead_entries(entries: Set[Tuple], buf) -> Set[Tuple]:
    """Remove sleep entries naming indices no longer in the buffer.

    Indices are reused after rollbacks and full drains, so an entry
    must die with its instruction — a stale entry could otherwise match
    an unrelated instruction at a recycled index and license an unsound
    join."""
    return {e for e in entries
            if all(i in buf for i in e[1:] if isinstance(i, int))}
