"""``repro.engine`` — the structural-sharing execution core.

One engine under every driver: the Pitchfork explorer, the symbolic
runner, the sequential runner, the SCT two-trace product and the
metatheory checks all step configurations through
:class:`ExecutionEngine`, which adds step/fork/reuse accounting and a
trial-step cache over the (pure, deterministic) machine relation.

The supporting structures make forking free:

* :class:`Log` — persistent cons-list logs (schedule/trace/violations)
  with O(1) append and fork, materialized lazily;
* :class:`MachineState` — one exploration arm: configuration + logs +
  budgets, forked in O(1);
* :class:`ScheduleTree` — the DFS fork trie over an enumerated
  schedule family; tree walks visit each shared prefix once instead of
  re-running every schedule from step 0;
* :class:`Frontier` — the pending-work set, with the visit order as a
  pluggable :func:`make_frontier` strategy (``dfs``/``bfs``/``random``/
  ``coverage``/``mcts``); every tree-walking driver pushes fork arms
  into one instead of hardcoding a stack, and may feed path outcomes
  back through the ``reward`` hook;
* :class:`MCTSFrontier` — best-first violation hunting: a UCT bandit
  over the fork trie with playout priors (speculation-window depth,
  tainted-load proximity, PC novelty) and back-propagated violation
  rewards (:mod:`repro.engine.mcts`);
* :mod:`repro.engine.por` — independence-based partial-order
  reduction: the commutation relation over directive pairs, sleep-set
  entries for covered rollback outcomes, and the ``none``/``sleepset``/
  ``full`` pruning levels drivers thread through ``prune=``;
* :mod:`repro.engine.subsume` — redundant-state subsumption over the
  hash-consed state core: the :class:`SeenStates` table prunes fork
  arms whose configuration was already explored with the same or
  weaker residual obligations, behind the ``subsume=`` knob.

See DESIGN.md ("The execution engine", "The frontier and sharding",
"Partial-order reduction", "State subsumption") for the design
rationale.
"""

from .core import EngineStats, ExecutionEngine
from .frontier import (BreadthFirstFrontier, CoverageFrontier,
                       DepthFirstFrontier, Frontier, RandomFrontier,
                       available_strategies, make_frontier,
                       register_strategy, strategy_descriptions)
from .journal import EMPTY_LOG, Log
from .mcts import MCTSFrontier, validate_mcts
from .por import (PRUNE_LEVELS, Footprint, PruningStats, footprint,
                  hazard_load, independent, validate_prune)
from .state import MachineState
from .subsume import SeenStates, SubsumptionStats, validate_subsume
from .tree import ScheduleTree, TreeNode

__all__ = [
    "BreadthFirstFrontier", "CoverageFrontier", "DepthFirstFrontier",
    "EngineStats", "ExecutionEngine", "EMPTY_LOG", "Footprint", "Frontier",
    "Log", "MCTSFrontier", "MachineState", "PRUNE_LEVELS", "PruningStats",
    "RandomFrontier", "ScheduleTree", "SeenStates", "SubsumptionStats",
    "TreeNode", "available_strategies", "footprint", "hazard_load",
    "independent", "make_frontier", "register_strategy",
    "strategy_descriptions", "validate_mcts", "validate_prune",
    "validate_subsume",
]
