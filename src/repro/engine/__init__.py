"""``repro.engine`` — the structural-sharing execution core.

One engine under every driver: the Pitchfork explorer, the symbolic
runner, the sequential runner, the SCT two-trace product and the
metatheory checks all step configurations through
:class:`ExecutionEngine`, which adds step/fork/reuse accounting and a
trial-step cache over the (pure, deterministic) machine relation.

The supporting structures make forking free:

* :class:`Log` — persistent cons-list logs (schedule/trace/violations)
  with O(1) append and fork, materialized lazily;
* :class:`MachineState` — one exploration arm: configuration + logs +
  budgets, forked in O(1);
* :class:`ScheduleTree` — the DFS fork trie over an enumerated
  schedule family; tree walks visit each shared prefix once instead of
  re-running every schedule from step 0.

See DESIGN.md ("The execution engine") for the design rationale.
"""

from .core import EngineStats, ExecutionEngine
from .journal import EMPTY_LOG, Log
from .state import MachineState
from .tree import ScheduleTree, TreeNode

__all__ = [
    "EngineStats", "ExecutionEngine", "EMPTY_LOG", "Log", "MachineState",
    "ScheduleTree", "TreeNode",
]
