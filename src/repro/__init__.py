"""repro — a reproduction of *Constant-Time Foundations for the New
Spectre Era* (Cauligi et al., PLDI 2020).

The front door is :mod:`repro.api` (angr-style)::

    from repro.api import Project, AnalysisManager

    report = Project.from_litmus("kocher_01").analyses.pitchfork()
    reports = AnalysisManager("two-phase", workers=4).run(projects)

or, from a shell, ``python -m repro {list,analyze,repair,litmus,table2}``.

Subpackages
-----------

``repro.api``
    The high-level front end: the :class:`~repro.api.Project` facade,
    the pluggable analysis registry, the unified
    :class:`~repro.api.Report`, batch execution via
    :class:`~repro.api.AnalysisManager`, and the CLI.
``repro.engine``
    The structural-sharing execution core every driver steps through:
    :class:`~repro.engine.ExecutionEngine` (step/fork/reuse counters,
    trial-step cache), O(1)-fork :class:`~repro.engine.MachineState`,
    persistent :class:`~repro.engine.Log` journals, and the
    :class:`~repro.engine.ScheduleTree` fork trie (see DESIGN.md).
``repro.core``
    The speculative out-of-order machine semantics, attacker directives,
    leakage observations, and the speculative constant-time (SCT)
    property (Sections 3 and Appendices A/B).
``repro.asm``
    An assembly front end for the paper's instruction language.
``repro.pitchfork``
    The Pitchfork detector: worst-case schedule generation and
    taint/symbolic exploration (Section 4).
``repro.ctcomp``
    A mini constant-time language and compiler standing in for the
    FaCT-vs-C comparison of the evaluation, plus the blanket mitigation
    passes (Fig 8 fences, Fig 13 retpolines, fence-before-load).
``repro.mitigate``
    Counterexample-guided mitigation synthesis: localize Pitchfork's
    violations to program points, place minimal per-site fences / SLH
    masks, re-verify, shrink, and emit a repair certificate.
``repro.litmus``
    Spectre litmus suites: Kocher v1 cases, the paper's speculative-only
    v1/v1.1 suites, v4, v2/ret2spec/retpoline and the aliasing attack.
``repro.casestudies``
    Ports of the audited crypto routines (Table 2).
``repro.cache``
    A cache model and cache-timing attackers driven by observation
    traces.
``repro.verify``
    Executable metatheory: empirical checks of the paper's theorems.
"""

__version__ = "1.1.0"

from .api import (AnalysisManager, AnalysisOptions,  # noqa: E402
                  Project, Report)

__all__ = ["AnalysisManager", "AnalysisOptions", "Project", "Report",
           "__version__"]
