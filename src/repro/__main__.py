"""``python -m repro`` — dispatch to the API command line."""

import sys

from .api.cli import main

if __name__ == "__main__":
    sys.exit(main())
