"""MiniCT: a small constant-time language and compiler.

Stands in for the paper's C-vs-FaCT comparison (§4.2.1): the ``c``
pipeline compiles every ``if`` to a branch; the ``fact`` pipeline
linearises branches on secret conditions into constant-time selects.
"""

from .ast import (ArrayDecl, Assign, BinOp, CallStmt, Const, Expr, FenceStmt,
                  Func, If, Index, Module, Select, Stmt, StoreStmt, UnOp,
                  Var, VarDecl, While)
from .compiler import compile_module, type_report
from .lower import CompiledModule, Lowerer, STACK_TOP
from .passes import (count_fences, fence_loads, harden, insert_fences,
                     retpolinize, splice_before)
from .typing import TypeEnv, TypeReport, check_module, expr_label

__all__ = [
    "ArrayDecl", "Assign", "BinOp", "CallStmt", "Const", "Expr",
    "FenceStmt", "Func", "If", "Index", "Module", "Select", "Stmt",
    "StoreStmt", "UnOp", "Var", "VarDecl", "While", "compile_module",
    "type_report", "CompiledModule", "Lowerer", "STACK_TOP",
    "count_fences", "fence_loads", "harden", "insert_fences",
    "retpolinize", "splice_before", "TypeEnv", "TypeReport",
    "check_module", "expr_label",
]
