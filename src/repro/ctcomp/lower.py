"""Lowering MiniCT to the machine ISA.

Two pipelines share this code generator:

* ``style="c"``   — every ``if`` becomes a conditional branch (what a C
  compiler does);
* ``style="fact"`` — ``if``s on *secret* conditions are linearised into
  constant-time selects (FaCT's transformation, cf. Fig 10): both arms'
  assignments are evaluated into shadow temporaries and committed with
  ``sel``; stores become read-modify-write selects.

``fences=True`` additionally inserts a speculation barrier at the head
of every branch arm (the Fig 8 mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..asm.builder import ProgramBuilder
from ..core.config import Config
from ..core.errors import CompileError
from ..core.lattice import PUBLIC
from ..core.memory import Memory, Region
from ..core.program import Program
from ..core.values import Reg, Value
from .ast import (ArrayDecl, Assign, BinOp, CallStmt, Const, Expr, FenceStmt,
                  Func, If, Index, Module, Select, Stmt, StoreStmt, UnOp, Var,
                  VarDecl, While)
from .typing import TypeEnv, expr_label

#: Operand the code generator passes around: an immediate or a register
#: name.
Operandish = Union[Value, str]

STACK_BASE = 0xF00
STACK_SIZE = 0x100
STACK_TOP = STACK_BASE + STACK_SIZE - 1
ARRAY_BASE = 0x40


@dataclass
class CompiledModule:
    """A lowered module plus everything needed to run it."""

    module: Module
    program: Program
    style: str
    array_bases: Dict[str, int]
    var_regs: Dict[str, str]
    temp_regs: Tuple[str, ...]

    def memory(self, overrides: Optional[Dict[str, List[int]]] = None
               ) -> Memory:
        """Build the module's memory image (arrays + stack)."""
        overrides = overrides or {}
        mem = Memory()
        for arr in self.module.arrays:
            base = self.array_bases[arr.name]
            init = overrides.get(arr.name,
                                 list(arr.init) if arr.init else None)
            mem = mem.with_region(Region(arr.name, base, arr.size,
                                         arr.label), init)
        mem = mem.with_region(Region("stack", STACK_BASE, STACK_SIZE,
                                     PUBLIC), None)
        return mem

    def initial_config(self,
                       var_overrides: Optional[Dict[str, int]] = None,
                       mem_overrides: Optional[Dict[str, List[int]]] = None
                       ) -> Config:
        """An initial configuration with every register defined."""
        var_overrides = var_overrides or {}
        regs: Dict[str, Value] = {"rsp": Value(STACK_TOP)}
        for decl in self.module.variables:
            reg = self.var_regs[decl.name]
            if reg in regs:
                continue  # shared register: the first declaration wins
            payload = var_overrides.get(decl.name, decl.init)
            regs[reg] = Value(payload, decl.label)
        for t in self.temp_regs:
            regs[t] = Value(0, PUBLIC)
        return Config.initial(regs, self.memory(mem_overrides),
                              pc=self.program.entry)

    def addr_of(self, array: str, offset: int = 0) -> int:
        return self.array_bases[array] + offset


class Lowerer:
    """One-shot code generator for a module."""

    def __init__(self, module: Module, style: str = "c",
                 fences: bool = False):
        if style not in ("c", "fact"):
            raise CompileError(f"unknown style {style!r}")
        self.module = module
        self.style = style
        self.fences = fences
        self.env = TypeEnv.of(module)
        self.b = ProgramBuilder()
        self._temps: List[str] = []
        self._labels = 0
        self.array_bases: Dict[str, int] = {}
        self.var_regs = {v.name: (v.reg_hint or f"v_{v.name}")
                         for v in module.variables}
        self._layout_arrays()

    # -- helpers -------------------------------------------------------------

    def _layout_arrays(self) -> None:
        next_base = ARRAY_BASE
        for arr in self.module.arrays:
            base = arr.base if arr.base is not None else next_base
            self.array_bases[arr.name] = base
            next_base = max(next_base, base + arr.size)

    def _temp(self) -> str:
        name = f"t{len(self._temps)}"
        self._temps.append(name)
        return name

    def _label(self, hint: str) -> str:
        self._labels += 1
        return f".{hint}_{self._labels}"

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: Expr) -> Operandish:
        """Lower an expression; returns an immediate or a register name."""
        if isinstance(expr, Const):
            return Value(expr.value, expr.label)
        if isinstance(expr, Var):
            if expr.name not in self.var_regs:
                raise CompileError(f"undeclared variable {expr.name!r}")
            return self.var_regs[expr.name]
        if isinstance(expr, BinOp):
            t = self._temp()
            self.b.op(t, expr.op, [self._expr(expr.lhs),
                                   self._expr(expr.rhs)])
            return t
        if isinstance(expr, UnOp):
            t = self._temp()
            self.b.op(t, expr.op, [self._expr(expr.arg)])
            return t
        if isinstance(expr, Select):
            t = self._temp()
            self.b.op(t, "sel", [self._expr(expr.cond),
                                 self._expr(expr.then),
                                 self._expr(expr.other)])
            return t
        if isinstance(expr, Index):
            base = self.array_bases[expr.array]
            t = self._temp()
            self.b.load(t, [base, self._expr(expr.index)])
            return t
        raise CompileError(f"unknown expression {expr!r}")

    # -- statements ------------------------------------------------------------

    def _stmts(self, stmts: Tuple[Stmt, ...]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.b.op(self.var_regs[stmt.name], "mov",
                      [self._expr(stmt.expr)])
        elif isinstance(stmt, StoreStmt):
            base = self.array_bases[stmt.array]
            value = self._expr(stmt.value)
            index = self._expr(stmt.index)
            self.b.store(value, [base, index])
        elif isinstance(stmt, If):
            secret_cond = not expr_label(stmt.cond, self.env).is_public()
            if secret_cond and self.style == "fact":
                self._linearise_if(stmt)
            else:
                self._branchy_if(stmt)
        elif isinstance(stmt, While):
            self._while(stmt)
        elif isinstance(stmt, CallStmt):
            self.b.call(f"f_{stmt.func}")
        elif isinstance(stmt, FenceStmt):
            self.b.fence()
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def _branchy_if(self, stmt: If) -> None:
        then_l = self._label("then")
        else_l = self._label("else")
        join_l = self._label("join")
        cond = self._expr(stmt.cond)
        self.b.br("ne", [cond, 0], then_l, else_l)
        self.b.label(then_l)
        if self.fences:
            self.b.fence()
        self._stmts(stmt.then)
        self.b.br("eq", [0, 0], join_l, join_l)
        self.b.label(else_l)
        if self.fences:
            self.b.fence()
        self._stmts(stmt.other)
        self.b.label(join_l)

    def _while(self, stmt: While) -> None:
        loop_l = self._label("loop")
        body_l = self._label("body")
        done_l = self._label("done")
        self.b.label(loop_l)
        cond = self._expr(stmt.cond)
        self.b.br("ne", [cond, 0], body_l, done_l)
        self.b.label(body_l)
        if self.fences:
            self.b.fence()
        self._stmts(stmt.body)
        self.b.br("eq", [0, 0], loop_l, loop_l)
        self.b.label(done_l)

    # -- the FaCT transformation ------------------------------------------------

    def _linearise_if(self, stmt: If) -> None:
        """Compile a secret ``if`` to straight-line selects.

        Assignments in each arm run into shadow temporaries (reads see
        earlier shadow writes); afterwards every written variable commits
        via ``sel(cond, then_value, else_value)``.  Stores become
        load-select-store read-modify-writes.  Nested control flow inside
        a secret branch is rejected, as in FaCT.
        """
        cond = self._expr(stmt.cond)
        then_map = self._shadow_arm(stmt.then, cond, positive=True)
        else_map = self._shadow_arm(stmt.other, cond, positive=False)
        for name in dict.fromkeys(list(then_map) + list(else_map)):
            then_v = then_map.get(name, self.var_regs[name])
            else_v = else_map.get(name, self.var_regs[name])
            self.b.op(self.var_regs[name], "sel", [cond, then_v, else_v])

    def _shadow_arm(self, stmts: Tuple[Stmt, ...], cond: Operandish,
                    positive: bool) -> Dict[str, str]:
        shadow: Dict[str, str] = {}

        def read(name: str) -> str:
            return shadow.get(name, self.var_regs[name])

        def shadow_expr(expr: Expr) -> Operandish:
            if isinstance(expr, Var):
                return read(expr.name)
            if isinstance(expr, Const):
                return Value(expr.value, expr.label)
            if isinstance(expr, BinOp):
                t = self._temp()
                self.b.op(t, expr.op, [shadow_expr(expr.lhs),
                                       shadow_expr(expr.rhs)])
                return t
            if isinstance(expr, UnOp):
                t = self._temp()
                self.b.op(t, expr.op, [shadow_expr(expr.arg)])
                return t
            if isinstance(expr, Select):
                t = self._temp()
                self.b.op(t, "sel", [shadow_expr(expr.cond),
                                     shadow_expr(expr.then),
                                     shadow_expr(expr.other)])
                return t
            if isinstance(expr, Index):
                t = self._temp()
                self.b.load(t, [self.array_bases[expr.array],
                                shadow_expr(expr.index)])
                return t
            raise CompileError(f"unknown expression {expr!r}")

        for stmt in stmts:
            if isinstance(stmt, Assign):
                t = self._temp()
                self.b.op(t, "mov", [shadow_expr(stmt.expr)])
                shadow[stmt.name] = t
            elif isinstance(stmt, StoreStmt):
                # read-modify-write: keep the old value on the other arm.
                base = self.array_bases[stmt.array]
                index = shadow_expr(stmt.index)
                old = self._temp()
                self.b.load(old, [base, index])
                new = shadow_expr(stmt.value)
                out = self._temp()
                args = [cond, new, old] if positive else [cond, old, new]
                self.b.op(out, "sel", args)
                self.b.store(out, [base, index])
            elif isinstance(stmt, FenceStmt):
                self.b.fence()
            else:
                raise CompileError(
                    "FaCT linearisation supports only assignments and "
                    f"stores inside secret branches, got {stmt!r}")
        return shadow

    # -- functions / module -------------------------------------------------------

    def lower(self) -> CompiledModule:
        entry = self.module.func(self.module.entry)
        others = [f for f in self.module.funcs if f.name != entry.name]
        # Entry first: its first instruction is the program entry.
        self.b.label(f"f_{entry.name}")
        self._stmts(entry.body)
        self.b.halt()
        for func in others:
            self.b.label(f"f_{func.name}")
            self._stmts(func.body)
            self.b.ret()
        program = self.b.build(entry=f"f_{entry.name}")
        return CompiledModule(self.module, program, self.style,
                              dict(self.array_bases), dict(self.var_regs),
                              tuple(self._temps))
