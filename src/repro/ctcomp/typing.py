"""Label inference for MiniCT (the FaCT-style security type system).

Expression labels are joins of their parts; variables carry declared
labels; array reads join the array's content label with the index label.
The checker also enforces the rules both source languages share:

* loop conditions must be public (no secret-dependent iteration counts);
* array *indices* flowing from secrets are reported — in classical CT
  they are already a violation, and the pipelines may choose to reject
  or merely warn (the C pipeline happily compiles them, which is exactly
  how the Kocher-style code exists in the wild).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import CompileError
from ..core.lattice import Label, PUBLIC
from .ast import (ArrayDecl, Assign, BinOp, CallStmt, Const, Expr, FenceStmt,
                  Func, If, Index, Module, Select, Stmt, StoreStmt, UnOp, Var,
                  VarDecl, While)


@dataclass
class TypeEnv:
    """Variable and array labels for one module."""

    vars: Dict[str, Label]
    arrays: Dict[str, Label]

    @staticmethod
    def of(module: Module) -> "TypeEnv":
        return TypeEnv(
            vars={v.name: v.label for v in module.variables},
            arrays={a.name: a.label for a in module.arrays})


def expr_label(expr: Expr, env: TypeEnv) -> Label:
    """The static label of an expression."""
    if isinstance(expr, Const):
        return expr.label
    if isinstance(expr, Var):
        if expr.name not in env.vars:
            raise CompileError(f"undeclared variable {expr.name!r}")
        return env.vars[expr.name]
    if isinstance(expr, BinOp):
        return expr_label(expr.lhs, env).join(expr_label(expr.rhs, env))
    if isinstance(expr, UnOp):
        return expr_label(expr.arg, env)
    if isinstance(expr, Select):
        return (expr_label(expr.cond, env)
                .join(expr_label(expr.then, env))
                .join(expr_label(expr.other, env)))
    if isinstance(expr, Index):
        if expr.array not in env.arrays:
            raise CompileError(f"undeclared array {expr.array!r}")
        return env.arrays[expr.array].join(expr_label(expr.index, env))
    raise CompileError(f"unknown expression {expr!r}")


@dataclass(frozen=True)
class TypeReport:
    """Result of checking a module."""

    secret_branch_sites: Tuple[str, ...]   # funcs containing secret ifs
    secret_index_sites: Tuple[str, ...]    # funcs indexing with secrets

    @property
    def classically_ct(self) -> bool:
        """Sequentially constant-time as far as the type system sees."""
        return not self.secret_branch_sites and not self.secret_index_sites


def _check_stmts(stmts: Tuple[Stmt, ...], env: TypeEnv, func: str,
                 secret_branches: List[str],
                 secret_indices: List[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            expr_label(stmt.expr, env)  # well-formedness
            if stmt.name not in env.vars:
                raise CompileError(f"undeclared variable {stmt.name!r}")
            actual = expr_label(stmt.expr, env)
            if not actual.flows_to(env.vars[stmt.name]):
                raise CompileError(
                    f"illegal flow: {actual} value into {env.vars[stmt.name]}"
                    f" variable {stmt.name!r} in {func}")
        elif isinstance(stmt, StoreStmt):
            if not expr_label(stmt.index, env).is_public():
                secret_indices.append(func)
            value = expr_label(stmt.value, env)
            if not value.flows_to(env.arrays[stmt.array]):
                raise CompileError(
                    f"illegal flow: {value} value into array "
                    f"{stmt.array!r} in {func}")
        elif isinstance(stmt, If):
            if not expr_label(stmt.cond, env).is_public():
                secret_branches.append(func)
            _check_stmts(stmt.then, env, func, secret_branches,
                         secret_indices)
            _check_stmts(stmt.other, env, func, secret_branches,
                         secret_indices)
        elif isinstance(stmt, While):
            if not expr_label(stmt.cond, env).is_public():
                raise CompileError(
                    f"secret loop condition in {func} (rejected by both "
                    f"C-with-annotations and FaCT)")
            _check_stmts(stmt.body, env, func, secret_branches,
                         secret_indices)
        elif isinstance(stmt, (CallStmt, FenceStmt)):
            pass
        else:
            raise CompileError(f"unknown statement {stmt!r}")
        # Index expressions inside reads:
        for e in _exprs_of(stmt):
            _walk_indices(e, env, func, secret_indices)


def _exprs_of(stmt: Stmt):
    if isinstance(stmt, Assign):
        return (stmt.expr,)
    if isinstance(stmt, StoreStmt):
        return (stmt.index, stmt.value)
    if isinstance(stmt, (If, While)):
        return (stmt.cond,)
    return ()


def _walk_indices(expr: Expr, env: TypeEnv, func: str,
                  secret_indices: List[str]) -> None:
    if isinstance(expr, Index):
        if not expr_label(expr.index, env).is_public():
            secret_indices.append(func)
        _walk_indices(expr.index, env, func, secret_indices)
    elif isinstance(expr, BinOp):
        _walk_indices(expr.lhs, env, func, secret_indices)
        _walk_indices(expr.rhs, env, func, secret_indices)
    elif isinstance(expr, UnOp):
        _walk_indices(expr.arg, env, func, secret_indices)
    elif isinstance(expr, Select):
        for sub in (expr.cond, expr.then, expr.other):
            _walk_indices(sub, env, func, secret_indices)


def check_module(module: Module) -> TypeReport:
    """Type-check a module; returns the sites relevant to CT policy."""
    env = TypeEnv.of(module)
    secret_branches: List[str] = []
    secret_indices: List[str] = []
    for func in module.funcs:
        _check_stmts(func.body, env, func.name, secret_branches,
                     secret_indices)
    return TypeReport(tuple(dict.fromkeys(secret_branches)),
                      tuple(dict.fromkeys(secret_indices)))
