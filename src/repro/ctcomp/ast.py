"""AST of MiniCT — a small imperative language with labelled data.

MiniCT stands in for the paper's two source languages:

* **C** — compiled naïvely: every ``if`` becomes a conditional branch;
* **FaCT** [8] — "a DSL for timing-sensitive computation": branches on
  *secret* conditions are linearised into constant-time selects, exactly
  the transformation shown in Fig 10's commentary ("The FaCT compiler
  transforms the branch at lines 5-7 into straight-line constant-time
  code, since the variable pad is considered secret").

The language is deliberately small: integers, labelled arrays, functions
without parameters (module-level variables act as the environment) —
enough to express the audited crypto kernels of §4.2 structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.lattice import Label, PUBLIC


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    """Base class of expressions."""


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal with an optional explicit label."""

    value: int
    label: Label = PUBLIC


@dataclass(frozen=True)
class Var(Expr):
    """A module-level variable reference."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; ``op`` is any machine opcode of arity 2
    (add, sub, and, xor, ltu, eq, …)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation (not, neg, mask)."""

    op: str
    arg: Expr


@dataclass(frozen=True)
class Select(Expr):
    """Explicit constant-time select ``cond ? then : other`` (cmov)."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Array load ``array[index]``."""

    array: str
    index: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``name = expr``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class StoreStmt(Stmt):
    """``array[index] = value``."""

    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { then } else { other }``.

    With a secret condition, the FaCT pipeline linearises this into
    selects; the C pipeline always emits a branch.
    """

    cond: Expr
    then: Tuple[Stmt, ...] = ()
    other: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    """``while (cond) { body }`` — public conditions only (both source
    languages reject secret-dependent loop bounds)."""

    cond: Expr
    body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class CallStmt(Stmt):
    """Call a module function by name."""

    func: str


@dataclass(frozen=True)
class FenceStmt(Stmt):
    """An explicit speculation barrier."""


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayDecl:
    """A labelled array of ``size`` cells.

    ``base`` is assigned by the compiler's layouter unless pinned.
    """

    name: str
    size: int
    label: Label = PUBLIC
    init: Optional[Tuple[int, ...]] = None
    base: Optional[int] = None


@dataclass(frozen=True)
class VarDecl:
    """A module variable with a declared label and initial value.

    ``reg_hint`` pins the variable to a specific machine register.  Two
    variables with disjoint lifetimes may share a register — which is
    what real register allocators do, and exactly the aliasing that
    makes the Fig 10 gadget possible (``%r14`` holds ``len _out`` first
    and the secret-derived ``ret`` afterwards).
    """

    name: str
    label: Label = PUBLIC
    init: int = 0
    reg_hint: Optional[str] = None


@dataclass(frozen=True)
class Func:
    """A function (no parameters; module variables are the environment)."""

    name: str
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Module:
    """A complete MiniCT compilation unit."""

    name: str
    funcs: Tuple[Func, ...]
    arrays: Tuple[ArrayDecl, ...] = ()
    variables: Tuple[VarDecl, ...] = ()
    entry: str = "main"

    def func(self, name: str) -> Func:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    def variable(self, name: str) -> VarDecl:
        for v in self.variables:
            if v.name == name:
                return v
        raise KeyError(name)
