"""Program-level transformation passes.

* :func:`insert_fences` — place a speculation barrier after every
  conditional branch arm (the blunt Spectre v1 mitigation of Fig 8);
* :func:`retpolinize` — replace every indirect jump with the retpoline
  construction of Fig 13 (call; self-looping fence; compute target;
  overwrite the return address; ret).

Both passes operate on assembled :class:`Program` values, so they apply
to hand-written code as well as compiler output.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.isa import (Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret,
                        Store)
from ..core.program import Program
from ..core.values import Reg, operands

#: Scratch register used by generated retpolines.
RETPOLINE_REG = Reg("rretp")


def insert_fences(program: Program) -> Program:
    """A fence at the head of both arms of every conditional branch.

    Implemented by redirecting each branch target to a fresh fence that
    falls through to the original target.  Program points for the new
    fences are allocated past the current maximum.
    """
    instrs: Dict[int, Instruction] = dict(program.items())
    next_free = _first_unreferenced_point(instrs)
    trampolines: Dict[int, int] = {}  # original target -> fence point

    def fence_to(target: int) -> int:
        nonlocal next_free
        if target not in trampolines:
            trampolines[target] = next_free
            instrs[next_free] = Fence(target)
            next_free += 1
        return trampolines[target]

    for n, instr in list(instrs.items()):
        if isinstance(instr, Br):
            instrs[n] = Br(instr.opcode, instr.args,
                           fence_to(instr.n_true), fence_to(instr.n_false))
    return Program(instrs, entry=program.entry, labels=program.labels())


def retpolinize(program: Program) -> Program:
    """Replace every ``jmpi`` with a Fig 13 retpoline.

    For a jump at point ``n`` computing target ``addr(r⃗v)``, we emit::

        n:    call(thunk, n+? fence)   ; pushes a safe return point
        pad:  fence self               ; speculation parks here
        thunk:
              rretp = op addr, r⃗v      ; the real target
              store rretp, [rsp]       ; overwrite the return address
              ret                      ; architecturally jumps to rretp

    The RSB predicts the ``ret`` returns to ``pad``, where the
    self-looping fence pins speculation until the jump target load
    resolves — at which point execution rolls back onto the *computed*
    target, never an attacker-trained one.
    """
    instrs: Dict[int, Instruction] = dict(program.items())
    next_free = _first_unreferenced_point(instrs)
    for n, instr in list(instrs.items()):
        if not isinstance(instr, Jmpi):
            continue
        pad = next_free
        thunk = next_free + 1
        store_pt = next_free + 2
        ret_pt = next_free + 3
        next_free += 4
        instrs[n] = Call(thunk, pad)
        instrs[pad] = Fence(pad)                       # fence self
        instrs[thunk] = Op(RETPOLINE_REG, "addr", instr.args, store_pt)
        instrs[store_pt] = Store(RETPOLINE_REG, operands("rsp"), ret_pt)
        instrs[ret_pt] = Ret()
    return Program(instrs, entry=program.entry, labels=program.labels())


def count_fences(program: Program) -> int:
    """Number of fence instructions (for mitigation-cost reporting)."""
    return sum(1 for _n, i in program.items() if isinstance(i, Fence))


def _first_unreferenced_point(instrs: Dict[int, Instruction]) -> int:
    """The first program point beyond everything the program mentions.

    Unmapped-but-referenced points are halt targets by convention, so new
    instructions must not land on them.
    """
    highest = max(instrs)
    for instr in instrs.values():
        if isinstance(instr, Br):
            highest = max(highest, instr.n_true, instr.n_false)
        elif isinstance(instr, Call):
            highest = max(highest, instr.target, instr.ret)
        elif isinstance(instr, (Op, Load, Store, Fence)):
            highest = max(highest, instr.next)
    return highest + 1
