"""Program-level transformation passes.

* :func:`insert_fences` — place a speculation barrier after every
  conditional branch arm (the blunt Spectre v1 mitigation of Fig 8);
* :func:`retpolinize` — replace every indirect jump with the retpoline
  construction of Fig 13 (call; self-looping fence; compute target;
  overwrite the return address; ret);
* :func:`fence_loads` — splice a speculation barrier in front of every
  load (the lfence-everywhere Spectre v4 mitigation: a load cannot
  execute while an unretired store's address is pending);
* :func:`harden` — all three in sequence: the blanket baseline the
  per-site synthesis of :mod:`repro.mitigate` must beat on fence count.

All passes operate on assembled :class:`Program` values, so they apply
to hand-written code as well as compiler output.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.isa import (Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret,
                        Store)
from ..core.program import Program
from ..core.values import Reg, operands

#: Scratch register used by generated retpolines.
RETPOLINE_REG = Reg("rretp")


def insert_fences(program: Program) -> Program:
    """A fence at the head of both arms of every conditional branch.

    Implemented by redirecting each branch target to a fresh fence that
    falls through to the original target.  Program points for the new
    fences are allocated past the current maximum.
    """
    instrs: Dict[int, Instruction] = dict(program.items())
    next_free = _first_unreferenced_point(instrs)
    trampolines: Dict[int, int] = {}  # original target -> fence point

    def fence_to(target: int) -> int:
        nonlocal next_free
        if target not in trampolines:
            trampolines[target] = next_free
            instrs[next_free] = Fence(target)
            next_free += 1
        return trampolines[target]

    for n, instr in list(instrs.items()):
        if isinstance(instr, Br):
            instrs[n] = Br(instr.opcode, instr.args,
                           fence_to(instr.n_true), fence_to(instr.n_false))
    return Program(instrs, entry=program.entry, labels=program.labels())


def retpolinize(program: Program) -> Program:
    """Replace every ``jmpi`` with a Fig 13 retpoline.

    For a jump at point ``n`` computing target ``addr(r⃗v)``, we emit::

        n:    call(thunk, n+? fence)   ; pushes a safe return point
        pad:  fence self               ; speculation parks here
        thunk:
              rretp = op addr, r⃗v      ; the real target
              store rretp, [rsp]       ; overwrite the return address
              ret                      ; architecturally jumps to rretp

    The RSB predicts the ``ret`` returns to ``pad``, where the
    self-looping fence pins speculation until the jump target load
    resolves — at which point execution rolls back onto the *computed*
    target, never an attacker-trained one.
    """
    instrs: Dict[int, Instruction] = dict(program.items())
    next_free = _first_unreferenced_point(instrs)
    for n, instr in list(instrs.items()):
        if not isinstance(instr, Jmpi):
            continue
        pad = next_free
        thunk = next_free + 1
        store_pt = next_free + 2
        ret_pt = next_free + 3
        next_free += 4
        instrs[n] = Call(thunk, pad)
        instrs[pad] = Fence(pad)                       # fence self
        instrs[thunk] = Op(RETPOLINE_REG, "addr", instr.args, store_pt)
        instrs[store_pt] = Store(RETPOLINE_REG, operands("rsp"), ret_pt)
        instrs[ret_pt] = Ret()
    return Program(instrs, entry=program.entry, labels=program.labels())


def splice_before(instrs: Dict[int, Instruction], n: int,
                  guard: Instruction, next_free: int) -> int:
    """Splice ``guard`` in front of program point ``n``, in place.

    The original instruction moves to the fresh point ``next_free`` and
    ``guard`` (whose successor must be ``next_free``) takes its place at
    ``n``.  Every inbound edge — static successors, call return
    addresses, *and* dynamically computed targets (mistrained jmpi
    fetches, RSB predictions, return addresses read from memory) — now
    passes through the guard, which is why the per-site mitigation
    passes use this rather than rewriting predecessor edges.  Returns
    the next free point.
    """
    instrs[next_free] = instrs[n]
    instrs[n] = guard
    return next_free + 1


def fence_loads(program: Program) -> Program:
    """A fence spliced in front of every load (blanket v4 mitigation).

    A load behind a fence cannot execute until the fence retires, which
    requires every older store to have resolved its address and
    retired — no store can be speculatively bypassed, and no younger
    transient leak survives an unresolved branch either.
    """
    instrs: Dict[int, Instruction] = dict(program.items())
    next_free = _first_unreferenced_point(instrs)
    for n, instr in list(instrs.items()):
        if isinstance(instr, Load):
            next_free = splice_before(instrs, n, Fence(next_free), next_free)
    return Program(instrs, entry=program.entry, labels=program.labels())


def harden(program: Program) -> Program:
    """The blanket combination: retpolines, fences after every branch
    arm, and fences before every load.

    For sequentially constant-time programs this closes every
    speculation-introduced leak the semantics models (the blanket
    property test in ``tests/test_mitigate.py`` checks it across the
    litmus registry); it is also maximally expensive, which is what the
    counterexample-guided synthesis in :mod:`repro.mitigate` improves
    on.
    """
    return fence_loads(insert_fences(retpolinize(program)))


def count_fences(program: Program) -> int:
    """Number of fence instructions (for mitigation-cost reporting)."""
    return sum(1 for _n, i in program.items() if isinstance(i, Fence))


def _first_unreferenced_point(instrs: Dict[int, Instruction]) -> int:
    """The first program point beyond everything the program mentions.

    Unmapped-but-referenced points are halt targets by convention, so new
    instructions must not land on them.
    """
    highest = max(instrs)
    for instr in instrs.values():
        if isinstance(instr, Br):
            highest = max(highest, instr.n_true, instr.n_false)
        elif isinstance(instr, Call):
            highest = max(highest, instr.target, instr.ret)
        elif isinstance(instr, (Op, Load, Store, Fence)):
            highest = max(highest, instr.next)
    return highest + 1
