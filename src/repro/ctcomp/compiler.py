"""The MiniCT compiler driver: C-style and FaCT-style pipelines.

``compile_module(module, style)`` type-checks and lowers a module.  The
two styles differ exactly where the paper's evaluation needs them to:

=========  ==========================  =================================
           secret ``if``               public ``if``
=========  ==========================  =================================
``c``      conditional branch          conditional branch
``fact``   linearised ct-selects       conditional branch
=========  ==========================  =================================

``fences=True`` applies the Fig 8 mitigation during lowering.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import CompileError
from .ast import Module
from .lower import CompiledModule, Lowerer
from .typing import TypeReport, check_module


def compile_module(module: Module, style: str = "c",
                   fences: bool = False) -> CompiledModule:
    """Type-check and lower a module with the given pipeline."""
    check_module(module)  # raises on illegal flows / secret loops
    return Lowerer(module, style=style, fences=fences).lower()


def type_report(module: Module) -> TypeReport:
    """The security-type report (secret branches / secret indices)."""
    return check_module(module)
