"""OpenSSL MEE-CBC (authenticated encryption) — ✓ in C, ``f`` in FaCT.

The FaCT violation is Figure 10, reconstructed faithfully:

1. ``%r14`` initially holds the public record length ``len _out``; line 3
   loads ``_out[len-1]`` — fine, the length is public.
2. The FaCT compiler linearises the secret ``pad > maxpad`` branch into
   selects, so ``ret`` becomes a *secret-derived* 0/1 — and the register
   allocator has placed ``ret`` in ``%r14`` (``len`` is dead by then).
3. ``_sha1_update`` is called.  Its ``ret`` must load the return address
   from the stack; with forwarding-hazard exploration, that load may
   forward from a store *older* than the most recent one to that slot —
   the return address pushed by the earlier ``aesni_cbc_encrypt`` call.
4. Execution speculatively "returns" to line 3 and re-runs the load with
   ``%r14`` now holding the secret-derived ``ret``: the access touches
   ``_out[0]`` or ``_out[-1]`` depending on the secret — an SCT
   violation only findable with forwarding-hazard detection (the ``f``).

The C build of MEE-CBC is the Lucky13-patched constant-time code (mask
idiom, so no secret branches), but its record-header glue carries a
classic speculative bounds-check bypass — the paper's "violations … in
code ancillary to the core crypto routines".
"""

from __future__ import annotations

from ..asm import ProgramBuilder
from ..core.config import Config
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region
from ..core.program import Program
from ..ctcomp import (ArrayDecl, Assign, BinOp, CallStmt, Const, Func, If,
                      Index, Module, Select, Var, VarDecl, compile_module)
from .common import CaseStudy, CaseVariant

OUT_LEN = 8

# C-variant layout.
HDR = 0x30          # public record header (4 bytes)
IDX_CELL = 0x38     # attacker-influenced header index (public)
OUT = 0x40          # ciphertext+padding (secret)
SBOX = 0x100        # public table (the transmission channel)
STACK = 0xF0


def mee_fact_module() -> Module:
    """Figure 10 in MiniCT.  ``len`` and ``ret`` share %r14."""
    pad, maxpad, length = Var("pad"), Var("maxpad"), Var("len")
    return Module(
        name="mee-cbc-fact",
        arrays=(ArrayDecl("out", OUT_LEN, SECRET,
                          tuple(0x50 + k for k in range(OUT_LEN)),
                          base=OUT),),
        variables=(
            VarDecl("len", PUBLIC, OUT_LEN - 1, reg_hint="r14"),
            VarDecl("pad", SECRET, 0),
            VarDecl("maxpad", PUBLIC, 3),
            VarDecl("ret", SECRET, 1, reg_hint="r14"),
        ),
        funcs=(
            Func("main", (
                CallStmt("aesni_cbc_encrypt"),
                # line 3: pad = _out[len _out - 1]  (%r14 = len, public)
                Assign("pad", Index("out", BinOp("sub", length, Const(1)))),
                # ret's default; %r14 is dead as `len` after the load and
                # the allocator reuses it.
                Assign("ret", Const(1)),
                # lines 5-7: FaCT linearises this secret branch; ret
                # lands in %r14, overwriting the dead len.
                If(BinOp("gt", pad, maxpad),
                   then=(Assign("pad", Var("maxpad")),
                         Assign("ret", Const(0)))),
                CallStmt("sha1_update"),
            )),
            Func("aesni_cbc_encrypt", (Assign("maxpad", Var("maxpad")),)),
            Func("sha1_update", (Assign("maxpad", Var("maxpad")),)),
        ),
    )


def _c_program() -> Program:
    """Masked (Lucky13-patched) core plus branchy header glue."""
    b = ProgramBuilder()
    b.label("mee")
    # -- ancillary glue: validate an attacker-supplied header index.
    b.load("ridx", [IDX_CELL])
    b.br("ltu", ["ridx", 4], "use_hdr", "skip_hdr")
    b.label("use_hdr")
    b.load("rh", [HDR, "ridx"])          # speculative OOB reads `out`
    b.load("rs", [SBOX, "rh"])           # dependent access: the leak
    b.label("skip_hdr")
    # -- constant-time padding handling (mask idiom, as patched C does):
    b.load("rpad", [OUT + OUT_LEN - 1])  # public address, secret value
    b.op("rc", "gt", ["rpad", 3])
    b.op("rpad", "sel", ["rc", 3, "rpad"])
    b.op("rmac", "mul", ["rpad", 31])    # stand-in for the MAC compare
    b.halt()
    return b.build(entry="mee")


def _c_memory() -> Memory:
    mem = Memory()
    mem = mem.with_region(Region("hdr", HDR, 4, PUBLIC), [23, 3, 1, 0])
    mem = mem.with_region(Region("idx", IDX_CELL, 1, PUBLIC), [16])
    # `out` sits where the glue's out-of-bounds header read lands.
    mem = mem.with_region(Region("out", OUT, OUT_LEN, SECRET),
                          [0x50 + k for k in range(OUT_LEN)])
    mem = mem.with_region(Region("sbox", SBOX, 64, PUBLIC), None)
    mem = mem.with_region(Region("stack", STACK, 16, PUBLIC), None)
    return mem


def _c_config(program: Program) -> Config:
    regs = {"ridx": 0, "rh": 0, "rs": 0, "rpad": 0, "rc": 0, "rmac": 0,
            "rsp": STACK + 15}
    return Config.initial(regs, _c_memory(), pc=program.entry)


def case_study() -> CaseStudy:
    c_program = _c_program()
    fact_build = compile_module(mee_fact_module(), style="fact")
    return CaseStudy(
        name="OpenSSL MEE-CBC",
        description="MAC-then-encrypt CBC record processing; Fig 10's "
                    "speculative stale-return gadget in the FaCT build.",
        c=CaseVariant("mee-c", "c", c_program,
                      lambda: _c_config(c_program), expected="v1",
                      notes="Masked Lucky13 core; the header-validation "
                            "glue has a bounds-check-bypass gadget."),
        fact=CaseVariant("mee-fact", "fact", fact_build.program,
                         fact_build.initial_config, expected="f",
                         notes="Fig 10: %r14 reuse + return-address "
                               "forwarding from the older call frame."),
    )
