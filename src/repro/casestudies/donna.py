"""curve25519-donna — the clean row of Table 2.

"Pitchfork did not flag any SCT violations in the curve25519-donna
implementations; this is not surprising, as the curve25519-donna library
is a straightforward implementation of crypto primitives." (§4.2.2)

The port is a Montgomery-ladder step over a 5-limb field element: limb
additions/multiplications with public loop bounds and the classic
constant-time conditional swap keyed on a secret bit — branch-free in
the C source too (donna uses the mask idiom), which is why both build
modes come out identical in shape and clean under Pitchfork.
"""

from __future__ import annotations

from ..core.lattice import PUBLIC, SECRET
from ..ctcomp import (ArrayDecl, Assign, BinOp, CallStmt, Const, Func, If,
                      Index, Module, Select, StoreStmt, UnOp, Var, VarDecl,
                      While, compile_module)
from .common import CaseStudy, CaseVariant

LIMBS = 3


def donna_module() -> Module:
    """A ladder step: fsum, fdifference-ish, and cswap(secret bit)."""
    i, bit, tmp_f, tmp_g, mask = (Var("i"), Var("bit"), Var("tmp_f"),
                                  Var("tmp_g"), Var("mask"))
    body = (
        # fsum: h[i] = f[i] + g[i]   (public loop, secret data)
        Assign("i", Const(0)),
        While(BinOp("ltu", i, Const(LIMBS)), (
            StoreStmt("h", i, BinOp("add", Index("f", i), Index("g", i))),
            Assign("i", BinOp("add", i, Const(1))),
        )),
        # fscalar: h[i] = h[i] * 121665 (the curve constant)
        Assign("i", Const(0)),
        While(BinOp("ltu", i, Const(LIMBS)), (
            StoreStmt("h", i, BinOp("mul", Index("h", i), Const(121665))),
            Assign("i", BinOp("add", i, Const(1))),
        )),
        # cswap(f, g, bit): branch-free even in the C source.
        Assign("mask", UnOp("mask", bit)),
        Assign("i", Const(0)),
        While(BinOp("ltu", i, Const(LIMBS)), (
            Assign("tmp_f", Index("f", i)),
            Assign("tmp_g", Index("g", i)),
            StoreStmt("f", i, Select(bit, tmp_g, tmp_f)),
            StoreStmt("g", i, Select(bit, tmp_f, tmp_g)),
            Assign("i", BinOp("add", i, Const(1))),
        )),
    )
    return Module(
        name="curve25519-donna",
        arrays=(
            ArrayDecl("f", LIMBS, SECRET, tuple(range(1, LIMBS + 1))),
            ArrayDecl("g", LIMBS, SECRET, tuple(range(11, LIMBS + 11))),
            ArrayDecl("h", LIMBS, SECRET, None),
        ),
        variables=(
            VarDecl("i", PUBLIC, 0),
            VarDecl("bit", SECRET, 1),
            VarDecl("tmp_f", SECRET, 0),
            VarDecl("tmp_g", SECRET, 0),
            VarDecl("mask", SECRET, 0),
        ),
        funcs=(Func("main", body),),
    )


def case_study() -> CaseStudy:
    module = donna_module()
    c_build = compile_module(module, style="c")
    fact_build = compile_module(module, style="fact")
    return CaseStudy(
        name="curve25519-donna",
        description="Straight-line field arithmetic with ct-cswap; no "
                    "ancillary glue — clean in both build modes.",
        c=CaseVariant("donna-c", "c", c_build.program,
                      c_build.initial_config, expected="clean",
                      notes="The C source is already branch-free on "
                            "secrets (mask idiom)."),
        fact=CaseVariant("donna-fact", "fact", fact_build.program,
                         fact_build.initial_config, expected="clean"),
    )
