"""libsodium ``crypto_secretbox`` — flagged in C, clean in FaCT.

§4.2.2: the C build compiles with stack protection; the function
epilogue checks a canary and, on mismatch, reaches
``__libc_message``, whose iovec loop (Fig 9) walks a linked list under a
*count* guard, not a null check::

    for (int cnt = nlist - 1; cnt >= 0; --cnt) {
        iov[cnt].iov_base = (char *) list->str;
        list = list->next;
    }

Speculatively, the processor (1) mispredicts the canary check into the
error path, and (2) runs the loop extra times, so ``list`` walks through
stale pointers into key material; once a *secret* lands in ``list``, the
next ``list->str`` dereference is a secret-dependent access.

The FaCT build has no stack-protector glue (the compiler emits only the
crypto kernel), so nothing is flagged — the paper's point that the
violations live in *ancillary* code, not the crypto itself.
"""

from __future__ import annotations

from ..asm import ProgramBuilder
from ..core.config import Config
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region
from ..core.program import Program
from ..ctcomp import (ArrayDecl, Assign, BinOp, Const, Func, Index, Module,
                      StoreStmt, Var, VarDecl, While, compile_module)
from .common import CaseStudy, CaseVariant

MSG_LEN = 2
CANARY = 0x7E57

# C-variant memory layout.
MSG, KS, CT = 0x40, 0x48, 0x50          # message, keystream, ciphertext
CANARY_CELL = 0x58
NLIST_CELL = 0x59
IOV = 0x60                               # iovec array (public)
NODE0 = 0x80                             # list node: [str, next]
KEYMAT = 0xB0                            # spilled key material (secret)
STACK = 0xF0


def _c_program() -> Program:
    b = ProgramBuilder()
    # -- crypto kernel: ct[i] = msg[i] ^ ks[i] (branch-free, public bounds)
    b.label("secretbox")
    b.mov("ri", 0)
    b.label("xor_loop")
    b.br("ltu", ["ri", MSG_LEN], "xor_body", "epilogue")
    b.label("xor_body")
    b.load("rm", [MSG, "ri"])
    b.load("rk", [KS, "ri"])
    b.op("rc", "xor", ["rm", "rk"])
    b.store("rc", [CT, "ri"])
    b.op("ri", "add", ["ri", 1])
    b.br("eq", [0, 0], "xor_loop", "xor_loop")
    # -- stack-protector epilogue: canary intact → done, smashed → panic
    b.label("epilogue")
    b.load("rcan", [CANARY_CELL])
    b.br("eq", ["rcan", CANARY], "done", "panic")
    b.label("done")
    b.halt()
    b.label("panic")
    b.call("libc_message")
    b.halt()
    # -- __libc_message (Fig 9): iovec loop guarded by a count
    b.label("libc_message")
    b.load("rcnt", [NLIST_CELL])         # nlist
    b.op("rcnt", "sub", ["rcnt", 1])     # cnt = nlist - 1
    b.mov("rlist", NODE0)                # list head
    b.label("iov_loop")
    b.br("ge", ["rcnt", 0], "iov_body", "iov_end")
    b.label("iov_body")
    b.load("rstr", ["rlist"])            # list->str
    b.store("rstr", [IOV, "rcnt"])       # iov[cnt].iov_base = str
    b.load("rlist", ["rlist", 1])        # list = list->next
    b.op("rcnt", "sub", ["rcnt", 1])
    b.br("eq", [0, 0], "iov_loop", "iov_loop")
    b.label("iov_end")
    b.ret()
    return b.build(entry="secretbox")


def _c_memory() -> Memory:
    mem = Memory()
    mem = mem.with_region(Region("msg", MSG, MSG_LEN, SECRET), [0x4D, 0x4E])
    mem = mem.with_region(Region("ks", KS, MSG_LEN, SECRET), [0x33, 0x44])
    mem = mem.with_region(Region("ct", CT, MSG_LEN, SECRET), None)
    mem = mem.with_region(Region("canary", CANARY_CELL, 1, PUBLIC), [CANARY])
    mem = mem.with_region(Region("nlist", NLIST_CELL, 1, PUBLIC), [1])
    mem = mem.with_region(Region("iov", IOV, 4, PUBLIC), None)
    # One real node; its ->next cell holds a stale pointer into spilled
    # key material (the loop never reads it architecturally — the count
    # guard exits first).
    mem = mem.with_region(Region("node0", NODE0, 2, PUBLIC),
                          [0x11, KEYMAT])
    mem = mem.with_region(Region("keymat", KEYMAT, 4, SECRET),
                          [0x61, 0x62, 0x63, 0x64])
    mem = mem.with_region(Region("stack", STACK, 16, PUBLIC), None)
    return mem


def _c_config(program: Program) -> Config:
    regs = {"ri": 0, "rm": 0, "rk": 0, "rc": 0, "rcan": 0, "rcnt": 0,
            "rlist": 0, "rstr": 0, "rsp": STACK + 15}
    return Config.initial(regs, _c_memory(), pc=program.entry)


def secretbox_fact_module() -> Module:
    """The FaCT build: just the crypto kernel (xor + running tag)."""
    i = Var("i")
    body = (
        Assign("i", Const(0)),
        Assign("tag", Const(0)),
        While(BinOp("ltu", i, Const(MSG_LEN)), (
            StoreStmt("ct", i,
                      BinOp("xor", Index("msg", i), Index("ks", i))),
            Assign("tag", BinOp("add", Var("tag"),
                                BinOp("mul", Index("ct", i), Const(31)))),
            Assign("i", BinOp("add", i, Const(1))),
        )),
    )
    return Module(
        name="secretbox-fact",
        arrays=(
            ArrayDecl("msg", MSG_LEN, SECRET, (0x4D, 0x4E)),
            ArrayDecl("ks", MSG_LEN, SECRET, (0x33, 0x44)),
            ArrayDecl("ct", MSG_LEN, SECRET, None),
        ),
        variables=(
            VarDecl("i", PUBLIC, 0),
            VarDecl("tag", SECRET, 0),
        ),
        funcs=(Func("main", body),),
    )


def case_study() -> CaseStudy:
    c_program = _c_program()
    fact_build = compile_module(secretbox_fact_module(), style="fact")
    return CaseStudy(
        name="libsodium secretbox",
        description="XOR-stream kernel; the C build adds the stack "
                    "protector whose error path contains the Fig 9 "
                    "__libc_message gadget.",
        c=CaseVariant("secretbox-c", "c", c_program,
                      lambda: _c_config(c_program), expected="v1",
                      notes="Canary-check misprediction reaches the "
                            "iovec loop; over-iteration loads key "
                            "material into the list pointer."),
        fact=CaseVariant("secretbox-fact", "fact", fact_build.program,
                         fact_build.initial_config, expected="clean",
                         notes="No stack-protector glue in FaCT output."),
    )
