"""OpenSSL ssl3 record validation — ✓ in C, ``f`` in FaCT.

The C build's violation lives in record-length glue: a speculatively
bypassed ``rec_len <= buf_size`` check lets the padding-byte read run
past the record buffer into the MAC secret, whose value then indexes a
lookup table — a textbook v1 gadget in ancillary code (the crypto core
itself is the constant-time Lucky13-patched padding scan).

The FaCT build removes that glue and linearises the padding comparison —
but record validation brackets the payload with digest-update calls, and
(as with MEE-CBC, Fig 10) the second call's return-address load can
forward from the *first* call's frame.  The speculative stale return
re-runs the padding-byte load with the register now holding the
secret-derived ``good`` flag: only forwarding-hazard exploration
(phase 2, bound 20) finds it.
"""

from __future__ import annotations

from ..asm import ProgramBuilder
from ..core.config import Config
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region
from ..core.program import Program
from ..ctcomp import (ArrayDecl, Assign, BinOp, CallStmt, Const, Func, If,
                      Index, Module, Var, VarDecl, compile_module)
from .common import CaseStudy, CaseVariant

REC_LEN = 8

# C-variant layout.
LEN_CELL = 0x30     # attacker-supplied record length (public)
REC = 0x40          # record bytes (public payload region)
MAC = 0x48          # MAC secret immediately after the record
PADTAB = 0x100      # public padding-validity table
STACK = 0xF0


def c_program() -> Program:
    b = ProgramBuilder()
    b.label("validate")
    b.load("rlen", [LEN_CELL])
    b.br("ltu", ["rlen", REC_LEN + 1], "read_pad", "reject")
    b.label("read_pad")
    b.op("rlast", "sub", ["rlen", 1])
    b.load("rpad", [REC, "rlast"])       # speculative OOB hits the MAC
    b.load("rok", [PADTAB, "rpad"])      # dependent access: the leak
    b.label("reject")
    # -- constant-time padding scan (the Lucky13-patched core):
    b.load("rb", [REC + REC_LEN - 1])
    b.op("rc", "eq", ["rb", 1])
    b.op("rgood", "sel", ["rc", 1, 0])
    b.halt()
    return b.build(entry="validate")


def _c_memory() -> Memory:
    mem = Memory()
    # Wire length 24: architecturally rejected (> 8), speculatively used.
    mem = mem.with_region(Region("len", LEN_CELL, 1, PUBLIC), [24])
    mem = mem.with_region(Region("rec", REC, REC_LEN, PUBLIC),
                          [7, 7, 7, 7, 7, 7, 7, 1])
    mem = mem.with_region(Region("mac", MAC, 16, SECRET),
                          [0x71 + k for k in range(16)])
    mem = mem.with_region(Region("padtab", PADTAB, 64, PUBLIC), None)
    mem = mem.with_region(Region("stack", STACK, 16, PUBLIC), None)
    return mem


def _c_config(program: Program) -> Config:
    regs = {"rlen": 0, "rlast": 0, "rpad": 0, "rok": 0, "rb": 0, "rc": 0,
            "rgood": 0, "rsp": STACK + 15}
    return Config.initial(regs, _c_memory(), pc=program.entry)


def ssl3_fact_module() -> Module:
    """The FaCT build: ct padding compare between digest updates.

    ``n`` (public record index) and ``good`` (secret validity flag)
    share ``%r12`` — the Fig 10 register-reuse pattern.
    """
    n, b_, good = Var("n"), Var("b"), Var("good")
    return Module(
        name="ssl3-record-fact",
        arrays=(ArrayDecl("rec", REC_LEN, SECRET,
                          (7, 7, 7, 7, 7, 7, 7, 1)),),
        variables=(
            VarDecl("n", PUBLIC, REC_LEN - 1, reg_hint="r12"),
            VarDecl("b", SECRET, 0),
            VarDecl("good", SECRET, 1, reg_hint="r12"),
        ),
        funcs=(
            Func("main", (
                CallStmt("md_update"),
                Assign("b", Index("rec", n)),   # pad byte (public index)
                Assign("good", Const(1)),
                If(BinOp("ne", b_, Const(1)),   # secret comparison
                   then=(Assign("good", Const(0)),)),
                CallStmt("md_update"),
            )),
            Func("md_update", (Assign("good", Var("good")),)),
        ),
    )


def case_study() -> CaseStudy:
    prog_c = c_program()
    fact_build = compile_module(ssl3_fact_module(), style="fact")
    return CaseStudy(
        name="OpenSSL ssl3 record validate",
        description="TLS record padding validation; length-check glue in "
                    "C, digest-bracketed ct compare in FaCT.",
        c=CaseVariant("ssl3-c", "c", prog_c,
                      lambda: _c_config(prog_c), expected="v1",
                      notes="Wire-length bounds check speculatively "
                            "bypassed; pad read runs into the MAC."),
        fact=CaseVariant("ssl3-fact", "fact", fact_build.program,
                         fact_build.initial_config, expected="f",
                         notes="Stale-return re-runs the pad-byte load "
                               "with %r12 holding the secret flag."),
    )
