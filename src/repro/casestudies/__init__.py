"""The Table 2 case studies: the four audited routines, each in a C
build and a FaCT build.

Expected flag pattern (Table 2; ✓ = violation, f = found only with
forwarding-hazard detection)::

    Case Study                    C    FaCT
    curve25519-donna              -    -
    libsodium secretbox           ✓    -
    OpenSSL ssl3 record validate  ✓    f
    OpenSSL MEE-CBC               ✓    f
"""

from typing import List

from .common import (CaseStudy, CaseVariant, TABLE2_BOUND_FWD,
                     TABLE2_BOUND_NO_FWD, evaluate_variant, render_table2,
                     repair_variant, table2)
from . import donna, mee_cbc, secretbox, ssl3_record


def all_case_studies() -> List[CaseStudy]:
    """All four Table 2 rows, paper order."""
    return [
        donna.case_study(),
        secretbox.case_study(),
        ssl3_record.case_study(),
        mee_cbc.case_study(),
    ]


__all__ = [
    "CaseStudy", "CaseVariant", "TABLE2_BOUND_FWD", "TABLE2_BOUND_NO_FWD",
    "evaluate_variant", "render_table2", "repair_variant", "table2",
    "all_case_studies",
]
