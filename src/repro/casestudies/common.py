"""Shared machinery for the Table 2 case studies.

Each case study provides a **C** variant and a **FaCT** variant (the two
columns of Table 2) with a ground-truth flag:

* ``"clean"`` — Pitchfork finds nothing in either phase;
* ``"v1"``    — flagged in phase 1 (no forwarding hazards, big bound);
* ``"f"``     — clean in phase 1, flagged only with forwarding-hazard
  detection at the reduced bound (the paper's ``f`` mark).

``evaluate_variant`` runs the paper's §4.2.1 two-phase procedure and
classifies the outcome, so benchmarks and tests can diff the produced
table against the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.config import Config
from ..core.program import Program
from ..pitchfork import analyze

#: Default bounds for reproducing Table 2.  The paper used 250/20; the
#: ported kernels are much smaller than compiled x86 functions, so a
#: scaled-down phase-1 bound keeps path counts tractable while the
#: phase-2 bound matches the paper's 20.  (secretbox's Fig 9 gadget
#: needs ≥ 24 in-flight instructions — see bench_scaling_bounds.)
TABLE2_BOUND_NO_FWD = 28
TABLE2_BOUND_FWD = 20


@dataclass(frozen=True)
class CaseVariant:
    """One build of a case study (one Table 2 cell)."""

    name: str                 #: e.g. "secretbox-c"
    language: str             #: "c" or "fact"
    program: Program
    make_config: Callable[[], Config]
    expected: str             #: "clean" | "v1" | "f"
    notes: str = ""

    def config(self) -> Config:
        return self.make_config()


@dataclass(frozen=True)
class CaseStudy:
    """A Table 2 row: the same routine in both build modes."""

    name: str
    description: str
    c: CaseVariant
    fact: CaseVariant

    def variants(self) -> Tuple[CaseVariant, CaseVariant]:
        return (self.c, self.fact)


def evaluate_variant(variant: CaseVariant,
                     bound_no_fwd: int = TABLE2_BOUND_NO_FWD,
                     bound_fwd: int = TABLE2_BOUND_FWD,
                     max_paths: int = 20_000) -> str:
    """Run the paper's two-phase procedure; classify as clean/v1/f."""
    phase1 = analyze(variant.program, variant.config(), bound=bound_no_fwd,
                     fwd_hazards=False, name=variant.name,
                     max_paths=max_paths)
    if not phase1.secure:
        return "v1"
    phase2 = analyze(variant.program, variant.config(), bound=bound_fwd,
                     fwd_hazards=True, name=variant.name,
                     max_paths=max_paths)
    if not phase2.secure:
        return "f"
    return "clean"


def table2(case_studies, **kw) -> Dict[str, Dict[str, str]]:
    """Reproduce Table 2: {case: {"C": flag, "FaCT": flag}}."""
    out: Dict[str, Dict[str, str]] = {}
    for cs in case_studies:
        out[cs.name] = {
            "C": evaluate_variant(cs.c, **kw),
            "FaCT": evaluate_variant(cs.fact, **kw),
        }
    return out


def render_table2(results: Dict[str, Dict[str, str]]) -> str:
    """Format like the paper: ✓ = violation, f = forwarding-only, blank
    = clean."""
    marks = {"clean": " ", "v1": "✓", "f": "f"}
    width = max(len(name) for name in results) + 2
    lines = [f"{'Case Study':<{width}} {'C':>3} {'FaCT':>5}"]
    for name, row in results.items():
        lines.append(f"{name:<{width}} {marks[row['C']]:>3} "
                     f"{marks[row['FaCT']]:>5}")
    return "\n".join(lines)
