"""Shared machinery for the Table 2 case studies.

Each case study provides a **C** variant and a **FaCT** variant (the two
columns of Table 2) with a ground-truth flag:

* ``"clean"`` — Pitchfork finds nothing in either phase;
* ``"v1"``    — flagged in phase 1 (no forwarding hazards, big bound);
* ``"f"``     — clean in phase 1, flagged only with forwarding-hazard
  detection at the reduced bound (the paper's ``f`` mark).

``evaluate_variant`` runs the paper's §4.2.1 two-phase procedure and
classifies the outcome, so benchmarks and tests can diff the produced
table against the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.config import Config
from ..core.program import Program

#: Default bounds for reproducing Table 2.  The paper used 250/20; the
#: ported kernels are much smaller than compiled x86 functions, so a
#: scaled-down phase-1 bound keeps path counts tractable while the
#: phase-2 bound matches the paper's 20.  (secretbox's Fig 9 gadget
#: needs ≥ 24 in-flight instructions — see bench_scaling_bounds.)
#: Canonical values live in :mod:`repro.api.project`; re-exported here
#: for backwards compatibility.
from ..api.project import TABLE2_BOUND_FWD, TABLE2_BOUND_NO_FWD  # noqa: E402


@dataclass(frozen=True)
class CaseVariant:
    """One build of a case study (one Table 2 cell)."""

    name: str                 #: e.g. "secretbox-c"
    language: str             #: "c" or "fact"
    program: Program
    make_config: Callable[[], Config]
    expected: str             #: "clean" | "v1" | "f"
    notes: str = ""

    def config(self) -> Config:
        return self.make_config()


@dataclass(frozen=True)
class CaseStudy:
    """A Table 2 row: the same routine in both build modes."""

    name: str
    description: str
    c: CaseVariant
    fact: CaseVariant

    def variants(self) -> Tuple[CaseVariant, CaseVariant]:
        return (self.c, self.fact)


def _table2_options(bound_no_fwd: int, bound_fwd: int, max_paths: int):
    from ..api import AnalysisOptions
    return AnalysisOptions.table2(bound_no_fwd=bound_no_fwd,
                                  bound_fwd=bound_fwd, max_paths=max_paths)


def evaluate_variant(variant: CaseVariant,
                     bound_no_fwd: int = TABLE2_BOUND_NO_FWD,
                     bound_fwd: int = TABLE2_BOUND_FWD,
                     max_paths: int = 20_000) -> str:
    """Run the paper's two-phase procedure; classify as clean/v1/f.

    Deprecated shim: delegates to the ``two-phase`` analysis of
    :mod:`repro.api` (``Project.from_variant(v).run("two-phase")``).
    """
    from ..api import Project
    options = _table2_options(bound_no_fwd, bound_fwd, max_paths)
    project = Project.from_variant(variant, options=options)
    return project.run("two-phase").status


def table2(case_studies, workers: Optional[int] = None,
           **kw) -> Dict[str, Dict[str, str]]:
    """Reproduce Table 2: {case: {"C": flag, "FaCT": flag}}.

    Deprecated shim over :class:`repro.api.AnalysisManager`; pass
    ``workers=N`` to audit the table on a process pool.
    """
    from ..api import AnalysisManager, Project
    unknown = set(kw) - {"bound_no_fwd", "bound_fwd", "max_paths"}
    if unknown:
        raise TypeError(f"table2() got unexpected keyword arguments "
                        f"{sorted(unknown)}")
    options = _table2_options(kw.get("bound_no_fwd", TABLE2_BOUND_NO_FWD),
                              kw.get("bound_fwd", TABLE2_BOUND_FWD),
                              kw.get("max_paths", 20_000))
    manager = AnalysisManager("two-phase", workers=workers)
    case_studies = list(case_studies)
    projects = [Project.from_variant(v, options=options)
                for cs in case_studies for v in cs.variants()]
    reports = manager.run(projects)
    out: Dict[str, Dict[str, str]] = {}
    for cs, (c_report, fact_report) in zip(
            case_studies, zip(reports[::2], reports[1::2])):
        out[cs.name] = {"C": c_report.status, "FaCT": fact_report.status}
    return out


def repair_variant(variant: CaseVariant,
                   bound: int = TABLE2_BOUND_FWD,
                   policy: str = "auto",
                   max_paths: int = 20_000,
                   shards: int = 1):
    """Run mitigation synthesis on a Table 2 cell.

    Turns every case study into a repair scenario: the returned
    :class:`~repro.api.Report` carries the ``mitigation`` certificate —
    fences/SLH masks placed vs the blanket baseline, and the
    sequential-step overhead of the hardened kernel.
    """
    from ..api import AnalysisOptions, Project
    options = AnalysisOptions.table2(bound=bound, policy=policy,
                                     max_paths=max_paths, shards=shards)
    return Project.from_variant(variant, options=options).run("repair")


def render_table2(results: Dict[str, Dict[str, str]]) -> str:
    """Format like the paper: ✓ = violation, f = forwarding-only, blank
    = clean."""
    marks = {"clean": " ", "v1": "✓", "f": "f"}
    width = max(len(name) for name in results) + 2
    lines = [f"{'Case Study':<{width}} {'C':>3} {'FaCT':>5}"]
    for name, row in results.items():
        lines.append(f"{name:<{width}} {marks[row['C']]:>3} "
                     f"{marks[row['FaCT']]:>5}")
    return "\n".join(lines)
