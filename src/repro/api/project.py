"""The :class:`Project` facade — one object that owns a target under
analysis.

Modelled on angr's ``Project``: construct it from whatever you have —
a :class:`~repro.core.Program` plus :class:`~repro.core.Config`, raw
assembly source, a registered litmus-case name, or a Table 2
:class:`~repro.casestudies.CaseVariant` — and every detector in
:mod:`repro.api.analyses` becomes reachable through ``project.analyses``
with all knobs normalised into one validated :class:`AnalysisOptions`.

    >>> project = Project.from_litmus("kocher_01")
    >>> report = project.analyses.pitchfork()
    >>> report.ok
    False
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, Optional, Tuple

from ..asm import assemble
from ..core.config import Config
from ..core.machine import Machine
from ..core.memory import Memory
from ..core.program import Program
from ..engine import available_strategies
from ..engine.mcts import (DEFAULT_EXPLORATION, DEFAULT_PLAYOUT_DEPTH,
                           validate_mcts)
from ..engine.por import PRUNE_LEVELS
from ..engine.subsume import validate_subsume
from ..obs import validate_telemetry
from ..pitchfork.explorer import validate_budget

#: Default Table 2 bounds (see ``repro.casestudies.common``): the ported
#: kernels are smaller than compiled x86, so phase 1 runs at 28 instead
#: of the paper's 250; phase 2 matches the paper's 20.
TABLE2_BOUND_NO_FWD = 28
TABLE2_BOUND_FWD = 20

#: The bounds of the paper's evaluation (§4.2.1).
PAPER_BOUND_NO_FWD = 250
PAPER_BOUND_FWD = 20

_RSB_POLICIES = ("directive", "refuse", "circular")


@dataclass(frozen=True)
class AnalysisOptions:
    """Every analysis knob, normalised and validated in one place.

    Single-phase detectors read ``bound``/``fwd_hazards``; the two-phase
    procedure (§4.2.1) reads ``bound_no_fwd``/``bound_fwd``; the SCT and
    metatheory analyses read their own small sections.  Constructors:

    * :meth:`paper` — the paper's evaluation bounds (250/20);
    * :meth:`table2` — the scaled Table 2 bounds (28/20);
    * :meth:`for_case` — mirror a litmus case's ground-truth knobs.
    """

    # -- single-phase exploration -------------------------------------------
    bound: int = 20                 #: speculation bound (max ROB size)
    fwd_hazards: bool = True        #: explore deferred store addresses (v4)
    explore_aliasing: bool = False  #: §3.5 aliasing-prediction extension
    jmpi_targets: Tuple[int, ...] = ()   #: Spectre v2 exploration targets
    rsb_targets: Tuple[int, ...] = ()    #: ret2spec exploration targets
    rsb_policy: str = "directive"
    max_paths: int = 20_000
    max_steps: int = 40_000         #: per-path step budget
    stop_at_first: bool = True
    #: Frontier search order: "dfs" (seed order), "bfs", "random",
    #: "coverage" — set-invariant by Theorem B.20.
    strategy: str = "dfs"
    #: DT(bound) subtree shards run on a process pool (1 = in-process).
    shards: int = 1
    #: Partial-order reduction over the schedule tree: "none" (raw
    #: Definition B.18), "sleepset" (the default reduction), or "full"
    #: (window capping + degenerate-arm collapse) — all flag the same
    #: violation observations.  See :mod:`repro.engine.por`.
    prune: str = "sleepset"
    #: Redundant-state subsumption (:mod:`repro.engine.subsume`): prune
    #: fork arms whose state was already explored with the same or
    #: weaker residual obligations.  Same observation set, far fewer
    #: steps on re-convergent programs; off by default (concrete-state
    #: identity is meaningless to the symbolic back end, which ignores
    #: it — see :class:`~repro.api.analyses.SymbolicAnalysis`).
    subsume: bool = False
    #: Anytime mode: wall-clock budget in seconds (None = no deadline).
    #: A budgeted run stops at the deadline, is reported truncated
    #: (``--check`` exit 2, never clean) and carries honest coverage in
    #: ``report.anytime``.  The symbolic back end ignores (and reports
    #: ignoring) the budget.
    budget_seconds: Optional[float] = None
    #: UCT exploration constant for ``strategy="mcts"``
    #: (:mod:`repro.engine.mcts`); ignored by other strategies.
    mcts_c: float = DEFAULT_EXPLORATION
    #: Static-playout lookahead depth for ``strategy="mcts"``.
    mcts_playout: int = DEFAULT_PLAYOUT_DEPTH
    #: Record search telemetry (per-fetch-PC heatmap, fork-level
    #: schedule histogram — see :mod:`repro.obs.telemetry`) onto the
    #: report's ``telemetry`` section.  Pure observation: the explored
    #: schedule set and every violation are unchanged.  Off by default
    #: so defaulted options keep their pre-existing store keys.
    telemetry: bool = False

    # -- the symbolic back end ----------------------------------------------
    max_schedules: int = 512        #: tool schedules replayed symbolically
    max_worlds: int = 256           #: live symbolic worlds per replay

    # -- the two-phase procedure (§4.2.1) -----------------------------------
    bound_no_fwd: int = PAPER_BOUND_NO_FWD   #: phase 1 (v1/v1.1) bound
    bound_fwd: int = PAPER_BOUND_FWD         #: phase 2 (v4) bound

    # -- SCT (Definition 3.1) -----------------------------------------------
    sct_bound: int = 8              #: schedule-enumeration bound
    sct_max_schedules: int = 2_000

    # -- mitigation synthesis (repro.mitigate) -------------------------------
    #: Per-site mitigation policy: "fence" (speculation barriers only),
    #: "slh" (prefer index masking, fences as fallback), or "auto".
    policy: str = "auto"
    #: Propose→re-verify rounds before the synthesizer gives up.
    max_repair_rounds: int = 16
    #: Run the delta-debugging shrink phase after security is reached.
    shrink: bool = True

    # -- shared randomness ----------------------------------------------------
    #: RNG seed: drives the "random" search strategy and the metatheory
    #: schedule generator; recorded in reports for reproducibility.
    seed: int = 0

    # -- metatheory ----------------------------------------------------------
    experiments: int = 8            #: random schedules per metatheory run

    def __post_init__(self):
        for name in ("bound", "bound_no_fwd", "bound_fwd", "sct_bound"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("max_paths", "max_steps", "max_schedules", "max_worlds",
                     "sct_max_schedules", "experiments", "shards",
                     "max_repair_rounds"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.policy not in ("fence", "slh", "auto"):
            raise ValueError(f"policy must be one of "
                             f"('fence', 'slh', 'auto'), got {self.policy!r}")
        if self.rsb_policy not in _RSB_POLICIES:
            raise ValueError(f"rsb_policy must be one of {_RSB_POLICIES}, "
                             f"got {self.rsb_policy!r}")
        if self.strategy not in available_strategies():
            raise ValueError(
                f"strategy must be one of {list(available_strategies())}, "
                f"got {self.strategy!r}")
        if self.prune not in PRUNE_LEVELS:
            raise ValueError(
                f"prune must be one of {list(PRUNE_LEVELS)}, "
                f"got {self.prune!r}")
        validate_subsume(self.subsume)
        validate_budget(self.budget_seconds)
        validate_mcts(self.mcts_c, self.mcts_playout)
        validate_telemetry(self.telemetry)
        # Normalise sequences so options stay hashable (cache keys).
        object.__setattr__(self, "jmpi_targets", tuple(self.jmpi_targets))
        object.__setattr__(self, "rsb_targets", tuple(self.rsb_targets))

    # -- presets -------------------------------------------------------------

    @classmethod
    def paper(cls, **kw) -> "AnalysisOptions":
        """The paper's §4.2.1 evaluation configuration (bounds 250/20)."""
        kw.setdefault("bound_no_fwd", PAPER_BOUND_NO_FWD)
        kw.setdefault("bound_fwd", PAPER_BOUND_FWD)
        kw.setdefault("bound", PAPER_BOUND_FWD)
        return cls(**kw)

    @classmethod
    def table2(cls, **kw) -> "AnalysisOptions":
        """The scaled bounds used to reproduce Table 2 (28/20)."""
        kw.setdefault("bound_no_fwd", TABLE2_BOUND_NO_FWD)
        kw.setdefault("bound_fwd", TABLE2_BOUND_FWD)
        kw.setdefault("bound", TABLE2_BOUND_NO_FWD)
        return cls(**kw)

    @classmethod
    def for_case(cls, case, **kw) -> "AnalysisOptions":
        """Mirror a :class:`~repro.litmus.LitmusCase`'s required knobs."""
        kw.setdefault("bound", case.min_bound)
        kw.setdefault("fwd_hazards", case.needs_fwd_hazards)
        kw.setdefault("explore_aliasing", case.needs_aliasing)
        kw.setdefault("jmpi_targets", case.jmpi_targets)
        kw.setdefault("rsb_targets", case.rsb_targets)
        kw.setdefault("rsb_policy", case.rsb_policy)
        kw.setdefault("max_paths", 8_000)
        return cls(**kw)

    # -- functional updates --------------------------------------------------

    def with_(self, **kw) -> "AnalysisOptions":
        """Functional record update (``None`` values are ignored)."""
        kw = {k: v for k, v in kw.items() if v is not None}
        unknown = set(kw) - {f.name for f in fields(self)}
        if unknown:
            raise TypeError(f"unknown analysis options: {sorted(unknown)}")
        return replace(self, **kw) if kw else self


class Project:
    """A target under analysis: program + initial configuration + options.

    The front door of the reproduction.  All knobs live in
    :attr:`options`; all detectors hang off :attr:`analyses`.
    """

    def __init__(self, program: Program,
                 config: Optional[Config] = None, *,
                 make_config: Optional[Callable[[], Config]] = None,
                 name: str = "<project>",
                 options: Optional[AnalysisOptions] = None,
                 expected: Optional[str] = None,
                 description: str = ""):
        if (config is None) == (make_config is None):
            raise ValueError("provide exactly one of config= / make_config=")
        self.program = program
        self.name = name
        self.options = options if options is not None else AnalysisOptions()
        #: Ground truth when known: "clean"/"v1"/"f" for Table 2 variants,
        #: or a litmus case's expected flagging.
        self.expected = expected
        self.description = description
        self._config = config
        self._make_config = make_config

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_asm(cls, source: str, *,
                 regs: Optional[Dict[str, Any]] = None,
                 mem: Optional[Memory] = None,
                 pc: Optional[int] = None,
                 name: str = "<asm>",
                 options: Optional[AnalysisOptions] = None,
                 expected: Optional[str] = None) -> "Project":
        """Assemble raw source (via :mod:`repro.asm`) into a project."""
        program = assemble(source)
        config = Config.initial(regs or {}, mem if mem is not None
                                else Memory(),
                                pc if pc is not None else program.entry)
        return cls(program, config, name=name, options=options,
                   expected=expected)

    @classmethod
    def from_litmus(cls, case, *,
                    options: Optional[AnalysisOptions] = None) -> "Project":
        """From a registered litmus case, by name or record.

        Raises ``KeyError`` for unknown names (via
        :func:`repro.litmus.find_case`).  The project's options mirror
        the case's ground-truth knobs unless overridden.
        """
        from ..litmus import LitmusCase, find_case
        if not isinstance(case, LitmusCase):
            case = find_case(case)
        expected = ("flagged" if case.leaks_speculatively
                    or case.leaks_sequentially else "clean")
        return cls(case.program, make_config=case.make_config,
                   name=case.name,
                   options=options if options is not None
                   else AnalysisOptions.for_case(case),
                   expected=expected, description=case.description)

    @classmethod
    def from_variant(cls, variant, *,
                     options: Optional[AnalysisOptions] = None) -> "Project":
        """From a Table 2 :class:`~repro.casestudies.CaseVariant`."""
        return cls(variant.program, make_config=variant.make_config,
                   name=variant.name,
                   options=options if options is not None
                   else AnalysisOptions.table2(),
                   expected=variant.expected, description=variant.notes)

    # -- accessors -----------------------------------------------------------

    def config(self) -> Config:
        """A fresh initial configuration."""
        return self._config if self._config is not None \
            else self._make_config()

    def machine(self, evaluator=None) -> Machine:
        """A machine for this target honouring the RSB policy option."""
        return Machine(self.program, evaluator=evaluator,
                       rsb_policy=self.options.rsb_policy)

    @property
    def analyses(self):
        """Attribute access to every registered analysis, bound to this
        project: ``project.analyses.pitchfork(bound=12)``."""
        from .analyses import AnalysisHub
        return AnalysisHub(self)

    def run(self, analysis: str = "pitchfork", **overrides):
        """Run a registered analysis by name; returns a
        :class:`~repro.api.report.Report`."""
        from .analyses import get_analysis
        return get_analysis(analysis).run(self, **overrides)

    # -- identity (result-cache keys) ----------------------------------------

    def fingerprint(self) -> Tuple:
        """A value-based identity for (program, initial config).

        Two projects with equal fingerprints run identically under equal
        options — the contract the :class:`~repro.api.manager
        .AnalysisManager` cache relies on.
        """
        program = tuple((n, repr(instr)) for n, instr in self.program.items())
        return (self.name, self.program.entry, program, self.config())

    def with_options(self, **kw) -> "Project":
        """A copy of this project with updated options."""
        return Project(self.program, self._config,
                       make_config=self._make_config, name=self.name,
                       options=self.options.with_(**kw),
                       expected=self.expected, description=self.description)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Project({self.name!r}, {len(self.program)} instrs, "
                f"bound={self.options.bound})")
