"""Batch execution: one analysis across many projects.

The :class:`AnalysisManager` is what turns the Table 2 audit and the
litmus sweeps from serial loops into a worker-pool fan-out:

* ``workers=N`` runs tasks on a ``ProcessPoolExecutor`` (results are
  identical to the serial path — each task is a pure function of
  (program, config, options));
* an in-memory result cache keyed on the *cross-process stable*
  ``(analysis, target digest, canonical options)`` key (see
  :mod:`repro.serve.keys`) makes repeated sweeps (bound ablations,
  re-renders) free;
* ``store=`` adds a second, persistent tier — a
  :class:`~repro.serve.store.ResultStore` shared with the serve daemon
  — so batch runs survive process restarts: a rerun of yesterday's
  sweep reads yesterday's reports off disk instead of re-exploring.

Lookup order is memory → disk → compute; every tier's traffic is
counted in :class:`CacheInfo` (``hits``/``disk_hits``/``misses``/
``stores``) so cache effectiveness is observable, not guessed.

Projects are shipped to workers as plain ``(name, program, config,
options)`` payloads — the configuration is materialised in the parent,
so ``make_config`` closures never need to pickle.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs import ambient_tracer
from .analyses import get_analysis
from .project import AnalysisOptions, Project
from .report import Report


def _run_payload(analysis_name: str, name: str, program, config,
                 options: AnalysisOptions) -> Report:
    """Worker entry point: rebuild the project and run the analysis.

    Module-level (not a closure) so it pickles under every
    multiprocessing start method.
    """
    project = Project(program, config, name=name, options=options)
    return get_analysis(analysis_name).run(project)


@dataclass
class CacheInfo:
    """Hit/miss counters for the manager's result-cache tiers.

    ``hits`` counts the in-memory tier, ``disk_hits`` the persistent
    :class:`~repro.serve.store.ResultStore` tier, ``misses`` actual
    computations, ``stores`` reports written to disk.  Calling the
    object returns itself, so both the historical ``manager.cache_info``
    attribute style and the ``manager.cache_info()`` method style read
    the same counters.
    """

    hits: int = 0
    misses: int = 0
    size: int = 0
    disk_hits: int = 0
    stores: int = 0

    def __call__(self) -> "CacheInfo":
        return self

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "size": self.size, "disk_hits": self.disk_hits,
                "stores": self.stores}


class AnalysisManager:
    """Run one registered analysis over many projects, cached and
    optionally in parallel.

        manager = AnalysisManager("two-phase", workers=4,
                                  store="~/.cache/repro-store")
        reports = manager.run(projects)

    ``store`` (a :class:`~repro.serve.store.ResultStore` or a directory
    path) persists every computed report under its content address and
    serves warm reruns from disk — including reports computed by other
    processes (a serve daemon, yesterday's batch) against the same
    store.
    """

    def __init__(self, analysis: str = "pitchfork",
                 workers: Optional[int] = None,
                 cache: bool = True,
                 store: Optional[Union[str, "ResultStore"]] = None):
        self.analysis = get_analysis(analysis).name
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._cache_enabled = cache
        self._cache: Dict[Tuple, Report] = {}
        self._info = CacheInfo()
        if isinstance(store, str):
            from ..serve.store import ResultStore
            store = ResultStore(store)
        self.store = store

    # -- the batch entry point -----------------------------------------------

    def run(self, projects: Iterable[Project],
            options: Optional[AnalysisOptions] = None,
            **overrides) -> List[Report]:
        """Run the analysis on every project, in input order.

        Each project runs under its own options unless ``options`` (a
        shared override) or keyword overrides are given.
        """
        projects = list(projects)
        tracer = ambient_tracer()
        run_ts = tracer.start() if tracer.enabled else 0.0
        hits_before = self._info.hits
        disk_before = self._info.disk_hits
        payloads = []
        for project in projects:
            opts = (options if options is not None
                    else project.options).with_(**overrides)
            payloads.append((project.name, project.program,
                             project.config(), opts))
        keys = [self._key(project, opts)
                for project, (_, _, _, opts) in zip(projects, payloads)]

        results: Dict[int, Report] = {}
        pending: List[int] = []
        for i, key in enumerate(keys):
            if not self._cache_enabled:
                pending.append(i)
                continue
            if key in self._cache:
                self._info.hits += 1
                results[i] = self._cache[key]
                continue
            stored = self._from_store(key)
            if stored is not None:
                self._info.disk_hits += 1
                results[i] = self._cache[key] = stored
            else:
                pending.append(i)
        self._info.misses += len(pending)

        if pending:
            fresh = self._execute([payloads[i] for i in pending])
            for i, report in zip(pending, fresh):
                results[i] = report
                if self._cache_enabled:
                    self._cache[keys[i]] = report
                self._to_store(keys[i], report)
        self._info.size = len(self._cache)
        if tracer.enabled:
            # One span per batch: which tier answered how many targets
            # (computed = cold misses actually executed this call).
            tracer.add("manager.run", "manager", run_ts, {
                "analysis": self.analysis,
                "projects": len(projects),
                "computed": len(pending),
                "memory_hits": self._info.hits - hits_before,
                "disk_hits": self._info.disk_hits - disk_before,
                "workers": self.workers or 1})
        return [results[i] for i in range(len(projects))]

    def run_one(self, project: Project, **overrides) -> Report:
        return self.run([project], **overrides)[0]

    # -- execution back ends ---------------------------------------------------

    def _execute(self, payloads: Sequence[Tuple]) -> List[Report]:
        if self.workers and self.workers > 1 and len(payloads) > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(_run_payload, self.analysis, *p)
                           for p in payloads]
                return [f.result() for f in futures]
        return [_run_payload(self.analysis, *p) for p in payloads]

    # -- the persistent tier ---------------------------------------------------

    def _from_store(self, key: Tuple) -> Optional[Report]:
        if self.store is None:
            return None
        return self.store.get(self._store_key(key))

    def _to_store(self, key: Tuple, report: Report) -> None:
        if self.store is None:
            return
        self.store.put(self._store_key(key), report,
                       analysis=self.analysis)
        self._info.stores += 1

    @staticmethod
    def _store_key(key: Tuple) -> str:
        from ..serve.keys import store_key
        analysis, fingerprint, canon = key
        return store_key(analysis, fingerprint, canon)

    # -- cache management -------------------------------------------------------

    def _key(self, project: Project, options: AnalysisOptions) -> Tuple:
        """The cross-process stable cache key.

        Canonical options (sorted non-default fields) + the SHA-256
        target digest: equivalent option objects and identical targets
        built in different processes map to the same key, which is what
        lets the disk tier serve results computed elsewhere.
        """
        from ..serve.keys import canonical_options, fingerprint_digest
        return (self.analysis, fingerprint_digest(project),
                canonical_options(options))

    @property
    def cache_info(self) -> CacheInfo:
        return self._info

    def clear_cache(self) -> None:
        self._cache.clear()
        self._info = CacheInfo()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AnalysisManager({self.analysis!r}, "
                f"workers={self.workers}, cached={len(self._cache)})")
