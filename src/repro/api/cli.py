"""``python -m repro`` — the command-line front end.

Subcommands::

    python -m repro list                         # analyses, suites, cases
    python -m repro analyze kocher_01            # one target, one analysis
    python -m repro analyze victim.s --reg ra=9  # raw asm source
    python -m repro repair kocher_01             # synthesize a mitigation
    python -m repro litmus kocher --workers 4    # sweep suites
    python -m repro table2 --json                # reproduce Table 2
    python -m repro serve --store ~/.repro       # resident analysis daemon
    python -m repro submit kocher_01 --check     # run via the daemon
    python -m repro results --store ~/.repro     # browse the result store

Every subcommand takes ``--json`` for machine-readable output; analysis
knobs (``--bound``, ``--fwd-hazards``, …) map 1:1 onto
:class:`~repro.api.project.AnalysisOptions`.

Exit codes (CI contract)::

    0   clean: no violation, and with --check full, non-vacuous coverage
    1   a violation was found (or a ground-truth mismatch in `litmus`)
    2   --check only: "secure" earned with truncated coverage or a
        vacuous quantifier — coverage, not security, failed
    3   usage errors (unknown target/analysis/option values), and
        --cross-check backend disagreement — nothing about the target
        can be concluded when the oracle is wrong
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from .analyses import available_aliases, available_analyses
from .manager import AnalysisManager
from .project import AnalysisOptions, Project


def _option_overrides(args) -> Dict:
    """Collect --bound-style flags into AnalysisOptions overrides
    (absent flags stay None and are ignored by ``with_``)."""
    return {
        "bound": args.bound,
        "bound_no_fwd": args.bound_no_fwd,
        "bound_fwd": args.bound_fwd,
        "fwd_hazards": args.fwd_hazards,
        "explore_aliasing": args.aliasing,
        "max_paths": args.max_paths,
        "max_steps": args.max_steps,
        "max_schedules": args.max_schedules,
        "max_worlds": args.max_worlds,
        "strategy": args.strategy,
        "shards": args.shards,
        "seed": args.seed,
        "prune": args.prune,
        "subsume": getattr(args, "subsume", None),
        "telemetry": getattr(args, "telemetry", None),
        "budget_seconds": getattr(args, "budget_seconds", None),
        "mcts_c": getattr(args, "mcts_c", None),
        "mcts_playout": getattr(args, "mcts_playout", None),
        # repair-only knobs (absent on other subcommands, ignored when
        # None by AnalysisOptions.with_).
        "policy": getattr(args, "policy", None),
        "max_repair_rounds": getattr(args, "max_rounds", None),
        "shrink": getattr(args, "shrink", None),
    }


def _warn_truncated(reports) -> None:
    """Surface capped coverage honestly: a truncated report means a
    max_paths/max_steps/max_schedules/max_worlds cap bit (or the
    wall-clock budget expired), so "secure" only speaks for the explored
    fraction."""
    budgeted = [r.target for r in reports if r.truncated
                and r.anytime is not None and r.anytime.get("deadline_hit")]
    names = [r.target for r in reports if r.truncated
             and r.target not in budgeted]
    if budgeted:
        shown = ", ".join(budgeted[:6]) + (", …" if len(budgeted) > 6 else "")
        print(f"warning: wall-clock budget expired for {shown} — "
              f"coverage is partial (see the anytime stats; raise "
              f"--budget-seconds to explore further)", file=sys.stderr)
    if not names:
        return
    shown = ", ".join(names[:6]) + (", …" if len(names) > 6 else "")
    print(f"warning: exploration truncated for {shown} — a "
          f"max-paths/max-steps/max-schedules/max-worlds cap was hit; "
          f"coverage is partial (raise the caps to explore fully)",
          file=sys.stderr)


def _add_preset_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=("paper", "table2"),
                        help="start from a named options preset")


def _add_option_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bound", type=int, help="speculation bound")
    parser.add_argument("--bound-no-fwd", type=int,
                        help="two-phase: phase 1 bound")
    parser.add_argument("--bound-fwd", type=int,
                        help="two-phase: phase 2 bound")
    parser.add_argument("--fwd-hazards", action="store_true", default=None,
                        help="enable forwarding-hazard (v4) exploration")
    parser.add_argument("--no-fwd-hazards", dest="fwd_hazards",
                        action="store_false",
                        help="disable forwarding-hazard exploration")
    parser.add_argument("--aliasing", action="store_true", default=None,
                        help="enable §3.5 aliasing-prediction exploration")
    parser.add_argument("--max-paths", type=int, help="path-count cap")
    parser.add_argument("--max-steps", type=int,
                        help="per-path step budget")
    parser.add_argument("--max-schedules", type=int,
                        help="symbolic back end: schedule cap")
    parser.add_argument("--max-worlds", type=int,
                        help="symbolic back end: live-world cap")
    from ..engine import available_strategies
    parser.add_argument("--strategy", choices=available_strategies(),
                        help="frontier search order (default: dfs); the "
                             "flagged violation set is order-invariant")
    parser.add_argument("--shards", type=int,
                        help="split DT(bound) into subtree jobs on a "
                             "process pool of this size (default: 1)")
    parser.add_argument("--seed", type=int,
                        help="RNG seed for --strategy random (and the "
                             "metatheory analysis)")
    from ..engine.por import PRUNE_LEVELS
    parser.add_argument("--prune", choices=PRUNE_LEVELS,
                        help="partial-order reduction over the schedule "
                             "tree (default: sleepset); all levels flag "
                             "the same violation observations")
    parser.add_argument("--subsume", action="store_true", default=None,
                        help="prune fork arms whose state was already "
                             "explored with same-or-weaker obligations "
                             "(default: off); the observation set is "
                             "unchanged (symbolic runs ignore it)")
    parser.add_argument("--no-subsume", dest="subsume",
                        action="store_false",
                        help="disable redundant-state subsumption")
    parser.add_argument("--telemetry", action="store_true", default=None,
                        help="record search telemetry (per-fetch-PC "
                             "heatmap + fork-level histogram) onto the "
                             "report's telemetry section; pure "
                             "observation, the explored set is unchanged")
    parser.add_argument("--no-telemetry", dest="telemetry",
                        action="store_false",
                        help="disable search telemetry (overrides the "
                             "--trace implication)")
    parser.add_argument("--budget-seconds", type=float, metavar="SECONDS",
                        help="anytime mode: stop exploring at this "
                             "wall-clock deadline and report honest "
                             "coverage stats; a budget-truncated run is "
                             "never reported as clean coverage "
                             "(--check exit 2)")
    parser.add_argument("--mcts-c", type=float, metavar="C",
                        help="--strategy mcts: UCT exploration constant "
                             "(default: 0.5)")
    parser.add_argument("--mcts-playout", type=int, metavar="DEPTH",
                        help="--strategy mcts: static-playout lookahead "
                             "depth for the tainted-load prior "
                             "(default: 8)")


def _preset_options(args) -> Optional[AnalysisOptions]:
    preset = getattr(args, "preset", None)
    if preset == "paper":
        return AnalysisOptions.paper()
    if preset == "table2":
        return AnalysisOptions.table2()
    return None


def _parse_regs(pairs: List[str]) -> Dict[str, int]:
    regs = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not _:
            raise SystemExit(f"--reg wants name=value, got {pair!r}")
        regs[name] = int(value, 0)
    return regs


def _resolve_target(target: str, args) -> Project:
    """A litmus-case name, a case-variant name, or an asm file path."""
    options = _preset_options(args)
    if os.path.exists(target) or target.endswith(".s"):
        try:
            with open(target) as fh:
                source = fh.read()
        except OSError as exc:
            raise SystemExit(f"cannot read {target!r}: {exc}")
        return Project.from_asm(source, regs=_parse_regs(args.reg or []),
                                pc=args.pc,
                                name=os.path.basename(target),
                                options=options)
    from ..casestudies import all_case_studies
    for study in all_case_studies():
        for variant in study.variants():
            if variant.name == target:
                return Project.from_variant(variant, options=options)
    from ..litmus import find_case
    try:
        return Project.from_litmus(target, options=options)
    except KeyError:
        raise SystemExit(
            f"unknown target {target!r}: not a file, case-study variant, "
            f"or litmus case (try `python -m repro list`)")


def _target_spec(target: str, args) -> Dict:
    """The serve-layer job spec for a CLI positional target.

    File paths are read *client-side* and shipped by value (the daemon
    never touches this process's filesystem); names travel as-is and
    resolve on the daemon exactly as ``_resolve_target`` resolves them
    here.
    """
    from ..serve import spec_for_asm, spec_for_name
    preset = getattr(args, "preset", None)
    if os.path.exists(target) or target.endswith(".s"):
        try:
            with open(target) as fh:
                source = fh.read()
        except OSError as exc:
            raise SystemExit(f"cannot read {target!r}: {exc}")
        return spec_for_asm(source, regs=_parse_regs(args.reg or []),
                            pc=args.pc, name=os.path.basename(target),
                            preset=preset)
    return spec_for_name(target, preset=preset)


@contextmanager
def _traced(args, header: Dict[str, Any]):
    """Scope an ambient tracer over a command when ``--trace FILE`` was
    given; write the span capture (JSONL, ``repro trace`` readable) on
    the way out.  Yields the tracer (None when tracing is off) so
    commands can add their own spans.  ``header`` may be filled in
    *inside* the block (e.g. with the report's telemetry section) —
    it is serialised at exit.  All notices go to stderr, never stdout.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    from ..obs import Tracer, tracing_context, write_capture
    tracer = Tracer()
    with tracing_context(tracer):
        yield tracer
    spans = tracer.export()
    write_capture(path, spans, header=header)
    print(f"trace: {len(spans)} span(s) written to {path} "
          f"(inspect with `repro trace summary {path}`)", file=sys.stderr)


def _imply_telemetry(args, overrides: Dict) -> Dict:
    """``--trace`` implies ``--telemetry`` (a capture without the search
    heatmap is half a trace) unless the user said ``--no-telemetry``."""
    if getattr(args, "trace", None) and overrides.get("telemetry") is None:
        overrides = dict(overrides)
        overrides["telemetry"] = True
    return overrides


# -- subcommands ------------------------------------------------------------


def cmd_list(args) -> int:
    from ..casestudies import all_case_studies
    from ..engine import strategy_descriptions
    from ..litmus import all_suites
    suites = {name: [c.name for c in cases]
              for name, cases in all_suites().items()}
    studies = {cs.name: [v.name for v in cs.variants()]
               for cs in all_case_studies()}
    strategies = strategy_descriptions()
    if args.json:
        print(json.dumps({"analyses": available_analyses(),
                          "aliases": available_aliases(),
                          "strategies": strategies,
                          "litmus_suites": suites,
                          "case_studies": studies}, indent=2))
        return 0
    print("analyses:")
    for name, description in available_analyses().items():
        print(f"  {name:<14} {description}")
    aliases: Dict[str, List[str]] = {}
    for alias, target in available_aliases().items():
        aliases.setdefault(target, []).append(alias)
    print("\naliases:")
    for target, names in sorted(aliases.items()):
        print(f"  {', '.join(names)} -> {target}")
    print("\nsearch strategies (--strategy):")
    for name, description in strategies.items():
        print(f"  {name:<10} {description}")
    print("\nlitmus suites:")
    for name, cases in suites.items():
        print(f"  {name:<10} {len(cases):3} cases: "
              f"{', '.join(cases[:4])}{', …' if len(cases) > 4 else ''}")
    print("\ncase studies (Table 2):")
    for name, variants in studies.items():
        print(f"  {name:<30} {', '.join(variants)}")
    return 0


def cmd_analyze(args) -> int:
    project = _resolve_target(args.target, args)
    overrides = _imply_telemetry(args, _option_overrides(args))
    header = {"command": "analyze", "target": args.target,
              "analysis": args.analysis}
    record = None
    with _traced(args, header):
        report = project.run(args.analysis, **overrides)
        header["telemetry"] = (dict(report.telemetry)
                               if report.telemetry is not None else None)
        if getattr(args, "cross_check", False):
            # Run *both* backends on the full question (never
            # first-violation mode: agreement is on the complete
            # flagged-observation sets) and attach the verdict.
            from ..sps.diff import compare
            options = project.options.with_(
                **{k: v for k, v in overrides.items() if v is not None})
            record = compare(project.program, project.config(),
                             options.with_(stop_at_first=False),
                             name=project.name)
            report = report.with_(cross_check=record.section())
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.render())
    _warn_truncated([report])
    if record is not None and record.disagree:
        # Both backends ran to completion and flagged different
        # observation sets: one of them is wrong.  A distinct exit code
        # (the usage-error one — nothing about the *target* can be
        # concluded) keeps oracle bugs from masquerading as verdicts.
        print(f"error: backends disagree on {project.name}: "
              f"pitchfork={list(record.pf_obs)} "
              f"sps={list(record.sps_obs)} "
              f"(minimise with `python -m repro.sps.diff`)",
              file=sys.stderr)
        return 3
    if not report.ok:
        return 1
    # --check: a gate for CI scripts — "secure" earned with capped
    # coverage or by an empty quantifier (vacuous SCT pass) must not
    # pass silently.  Exit 2 distinguishes a *coverage* failure from a
    # found violation (exit 1), so pipelines can escalate differently.
    if args.check and (report.truncated or report.vacuous):
        return 2
    if args.check and record is not None and not record.agree:
        # explained-budget: the sets differ but a budget truncated at
        # least one side — agreement was not established, which is a
        # coverage failure, not a violation.
        return 2
    return 0


def cmd_repair(args) -> int:
    """``repro repair``: the analyze pipeline with the repair analysis.

    ``-a`` names the *verifying* detector the synthesis loop re-runs
    (currently only ``pitchfork``, the default).
    """
    from .analyses import get_analysis
    verifier = get_analysis(args.analysis or "pitchfork").name
    if verifier != "pitchfork":
        raise SystemExit(f"repair verifies with the pitchfork detector; "
                         f"-a {verifier} is not supported yet")
    args.analysis = "repair"
    return cmd_analyze(args)


def cmd_litmus(args) -> int:
    from ..litmus import all_suites, load_suite
    known = sorted(all_suites())
    names = args.suites or known
    unknown = [s for s in names if s not in known]
    if unknown:
        raise SystemExit(f"unknown suite(s) {unknown}; available: {known}")
    manager = AnalysisManager("pitchfork", workers=args.workers)
    overrides = _imply_telemetry(args, _option_overrides(args))
    out: Dict[str, Dict] = {}
    mismatches = []
    truncated = []
    flagged_any = vacuous_any = False
    t0 = time.time()
    # NB: with --workers > 1 the per-case exploration happens in pool
    # processes the ambient tracer does not reach; the capture then
    # carries the parent-side manager.run spans only.
    header = {"command": "litmus", "suites": names,
              "workers": args.workers}
    with _traced(args, header):
        for suite in names:
            projects = [Project.from_litmus(case)
                        for case in load_suite(suite)]
            reports = manager.run(projects, **overrides)
            truncated.extend(r for r in reports if r.truncated)
            vacuous_any = vacuous_any or any(r.vacuous for r in reports)
            rows = {}
            for project, report in zip(projects, reports):
                flagged = not report.ok
                flagged_any = flagged_any or flagged
                expected = project.expected == "flagged"
                rows[project.name] = {"flagged": flagged,
                                      "expected": expected,
                                      "wall_time": round(report.wall_time,
                                                         3)}
                if flagged != expected:
                    mismatches.append(project.name)
            out[suite] = rows
    elapsed = time.time() - t0
    if args.json:
        print(json.dumps({"suites": out, "mismatches": mismatches,
                          "wall_time": round(elapsed, 3)}, indent=2))
    else:
        for suite, rows in out.items():
            flagged = sum(r["flagged"] for r in rows.values())
            print(f"{suite}: {flagged}/{len(rows)} flagged")
            for name, row in rows.items():
                mark = "✓" if row["flagged"] else " "
                note = ("" if row["flagged"] == row["expected"]
                        else "  MISMATCH")
                print(f"  [{mark}] {name}{note}")
        print(f"\n{sum(len(r) for r in out.values())} cases in "
              f"{elapsed:.1f}s"
              + (f"; MISMATCHES: {mismatches}" if mismatches else ""))
    _warn_truncated(truncated)
    if mismatches:
        return 1
    if args.check:
        if flagged_any:
            return 1
        if truncated or vacuous_any:
            return 2
    return 0


def cmd_table2(args) -> int:
    from ..casestudies import all_case_studies, render_table2
    manager = AnalysisManager("two-phase", workers=args.workers)
    studies = all_case_studies()
    options = _preset_options(args)
    t0 = time.time()
    # One batch for the whole table so --workers parallelises across
    # all eight cells, not within one row.
    projects = [Project.from_variant(v, options=options)
                for study in studies for v in study.variants()]
    reports = manager.run(projects, **_option_overrides(args))
    results: Dict[str, Dict[str, str]] = {}
    for study, (c_report, fact_report) in zip(
            studies, zip(reports[::2], reports[1::2])):
        results[study.name] = {"C": c_report.status,
                               "FaCT": fact_report.status}
    elapsed = time.time() - t0
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print(render_table2(results))
        print(f"\n({elapsed:.1f}s; ✓ = SCT violation, "
              f"f = needs forwarding-hazard detection)")
    _warn_truncated(reports)
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: the resident analysis daemon (foreground).

    ``--stop`` and ``--stats`` are client modes against a running
    daemon; everything else starts one and blocks until it is shut
    down (SIGINT, or a client's ``repro serve --stop``).
    """
    from ..serve import ReproServer, ServeClient, ServeError
    if args.stop or args.stats:
        try:
            with ServeClient(socket_path=args.socket, host=args.host,
                             port=args.port or None) as client:
                if args.stop:
                    out = client.shutdown(drain=not args.no_drain)
                else:
                    out = client.stats().to_dict()
                    try:
                        out["metrics"] = client.metrics().get("metrics")
                    except ServeError:
                        # Daemon predates the metrics RPC.
                        out["metrics"] = None
        except (ConnectionError, ServeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
        print(json.dumps(out, indent=2))
        return 0
    server = ReproServer(socket_path=args.socket, host=args.host,
                         port=args.port or 0, store=args.store,
                         workers=args.workers)

    async def _serve():
        await server.start()
        where = (server.socket_path if server.socket_path is not None
                 else f"{server.host}:{server.port}")
        store_note = ("; no result store (--store to persist)"
                      if server.store is None
                      else f"; store {server.store.root}")
        print(f"repro daemon listening on {where}"
              f" ({server.pool.workers} workers{store_note})",
              file=sys.stderr)
        await server.serve_forever()

    import asyncio
    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def cmd_submit(args) -> int:
    """``repro submit``: run one analysis on the daemon.

    Same output and exit-code contract as ``repro analyze`` (0 clean,
    1 violation, 2 coverage failure under --check) — plus exit 3 when
    the daemon is unreachable or rejects the job.  ``--json`` reports
    carry the daemon's cache counters under ``details.cache``.
    """
    from ..serve import ServeClient, ServeError
    spec = _target_spec(args.target, args)
    overrides = {name: value
                 for name, value
                 in _imply_telemetry(args, _option_overrides(args)).items()
                 if value is not None}

    def echo(event):
        if not args.progress:
            return
        if event.get("kind") == "shard":
            print(f"  shard {event['index']}: "
                  f"{event['paths_explored']} paths, "
                  f"{event['violations']} violations "
                  f"[{event['cumulative_violations']} total]",
                  file=sys.stderr)
        elif event.get("kind") == "split":
            print(f"  split into {event['jobs']} jobs "
                  f"({event['shards']} shards)", file=sys.stderr)

    # The analysis runs in the daemon's processes, out of the ambient
    # tracer's reach — the capture records the client-side RPC phases
    # (submit, wait) and carries the report's telemetry section in its
    # header.
    header = {"command": "submit", "target": args.target,
              "analysis": args.analysis}
    try:
        with _traced(args, header) as tracer, \
                ServeClient(socket_path=args.socket, host=args.host,
                            port=args.port or None,
                            timeout=args.timeout) as client:
            ts = tracer.start() if tracer is not None else 0.0
            job = client.submit(spec, analysis=args.analysis,
                                options=overrides)
            if tracer is not None:
                tracer.add("submit", "client", ts,
                           {"job": job.get("job"),
                            "cached": bool(job.get("cached"))})
            ts = tracer.start() if tracer is not None else 0.0
            report, cache = client.wait(job["job"], timeout=args.timeout,
                                        on_event=echo)
            if tracer is not None:
                tracer.add("wait", "client", ts,
                           {"source": cache.get("source")})
            header["telemetry"] = (
                dict(report.telemetry)
                if report.telemetry is not None else None)
    except (ConnectionError, ServeError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if args.json:
        payload = report.to_dict()
        details = dict(payload.get("details") or {})
        details["cache"] = cache
        payload["details"] = details
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        source = cache.get("source")
        if source and source != "computed":
            print(f"(served from {source} cache)", file=sys.stderr)
    _warn_truncated([report])
    if not report.ok:
        return 1
    if args.check and (report.truncated or report.vacuous):
        return 2
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: inspect a ``--trace`` span capture.

    ``summary`` aggregates the capture (span counts and wall time per
    (category, name) series, processes, shards, the header's telemetry
    digest); ``export --format chrome`` converts it to Chrome
    ``trace_event`` JSON loadable in Perfetto / ``chrome://tracing``.
    """
    from ..obs import (chrome_trace, read_capture, sort_spans,
                       summarize_spans)
    try:
        header, spans = read_capture(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if args.trace_command == "summary":
        summary = summarize_spans(spans)
        if header is not None:
            summary["header"] = {k: v for k, v in header.items()
                                 if k not in ("kind", "version")}
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        head = summary.get("header", {})
        what = " ".join(str(head[k]) for k in ("command", "target")
                        if head.get(k))
        print(f"capture: {summary['spans']} span(s), "
              f"{summary['processes']} process(es), "
              f"shards {summary['shards'] or '[]'}"
              + (f" — {what}" if what else ""))
        for series in summary["series"]:
            print(f"  {series['cat'] + '/' + series['name']:<24} "
                  f"×{series['count']:<6} {series['wall']:.4f}s")
        telemetry = head.get("telemetry")
        if telemetry:
            heatmap = telemetry.get("heatmap", {})
            hottest = sorted(heatmap.items(),
                             key=lambda kv: (-kv[1], int(kv[0])))[:5]
            print(f"  telemetry: {telemetry.get('pops', 0)} pops over "
                  f"{len(heatmap)} fetch PCs; hottest: "
                  + ", ".join(f"pc {pc} ×{n}" for pc, n in hottest))
        return 0
    # export
    spans = sort_spans(spans)
    if args.format == "chrome":
        payload = json.dumps(chrome_trace(spans), indent=2,
                             sort_keys=True)
    else:
        payload = "\n".join(json.dumps({"kind": "span", **span},
                                       sort_keys=True) for span in spans)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {len(spans)} span(s) to {args.output}",
              file=sys.stderr)
    else:
        print(payload)
    return 0


def cmd_results(args) -> int:
    """``repro results``: browse / GC a result store.

    With ``--store`` the store directory is opened directly (no daemon
    needed); otherwise the running daemon is asked for its listing.
    """
    from ..serve import ResultStore, ServeClient, ServeError
    if args.store:
        store = ResultStore(args.store)
        if args.clear:
            count = len(store)
            store.clear()
            print(f"cleared {count} entries from {store.root}")
            return 0
        if args.gc is not None or args.max_age is not None:
            removed = store.gc(max_entries=args.gc, max_age=args.max_age)
            print(f"evicted {removed} entries from {store.root}")
            return 0
        rows = store.entries()[-args.limit:]
    else:
        if args.clear or args.gc is not None or args.max_age is not None:
            raise SystemExit("--clear/--gc/--max-age operate on a store "
                             "directory; pass --store PATH")
        try:
            with ServeClient(socket_path=args.socket, host=args.host,
                             port=args.port or None) as client:
                rows = client.results(limit=args.limit).get("entries", [])
        except (ConnectionError, ServeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
    if args.json:
        print(json.dumps({"entries": rows}, indent=2))
        return 0
    if not rows:
        print("no stored results")
        return 0
    for row in rows:
        print(f"{row['key'][:12]}  {row.get('analysis', ''):<10} "
              f"{row.get('status', ''):<22} {row.get('target', '')}")
    return 0


class _Parser(argparse.ArgumentParser):
    """argparse with usage errors on exit code 3.

    Stock argparse exits 2 on bad flags, which would collide with the
    --check gate's exit 2 (truncated/vacuous coverage).
    """

    def error(self, message):
        self.print_usage(sys.stderr)
        print(f"{self.prog}: error: {message}", file=sys.stderr)
        raise SystemExit(3)


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Constant-time foundations for the new Spectre era — "
                    "reproduction front end")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list analyses, suites and cases")
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=cmd_list)

    p_analyze = sub.add_parser(
        "analyze", help="run one analysis on one target")
    p_analyze.add_argument("target",
                           help="litmus case, case-study variant, or .s file")
    p_analyze.add_argument("-a", "--analysis", default="pitchfork",
                           help="registered analysis name "
                                "(default: pitchfork)")
    p_analyze.add_argument("--reg", action="append", metavar="NAME=VAL",
                           help="initial register (asm targets; repeatable)")
    p_analyze.add_argument("--pc", type=int, help="entry point (asm targets)")
    p_analyze.add_argument("--json", action="store_true")
    p_analyze.add_argument("--check", action="store_true",
                           help="CI gate: exit nonzero on any violation, "
                                "truncated coverage, or a vacuous pass")
    p_analyze.add_argument("--cross-check", action="store_true",
                           help="also run the speculation-passing second "
                                "opinion (repro.sps) and the pitchfork "
                                "explorer on the full question and attach "
                                "the agreement verdict; exit 3 if the two "
                                "complete runs flag different observation "
                                "sets")
    p_analyze.add_argument("--trace", metavar="FILE",
                           help="capture a span trace of the run (implies "
                                "--telemetry; inspect with `repro trace`)")
    _add_preset_flag(p_analyze)
    _add_option_flags(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_repair = sub.add_parser(
        "repair", help="synthesize a minimal mitigation (fences/SLH) and "
                       "re-verify")
    p_repair.add_argument("target",
                          help="litmus case, case-study variant, or .s file")
    p_repair.add_argument("-a", "--analysis", default="pitchfork",
                          help="verifying detector for the repair loop "
                               "(default and only option: pitchfork)")
    p_repair.add_argument("--policy", choices=("fence", "slh", "auto"),
                          help="per-site mitigation policy (default: auto — "
                               "SLH masking for v1 loads, fences otherwise)")
    p_repair.add_argument("--max-rounds", type=int,
                          help="propose→re-verify rounds before giving up")
    p_repair.add_argument("--no-shrink", dest="shrink",
                          action="store_false", default=None,
                          help="skip the delta-debugging shrink phase")
    p_repair.add_argument("--reg", action="append", metavar="NAME=VAL",
                          help="initial register (asm targets; repeatable)")
    p_repair.add_argument("--pc", type=int, help="entry point (asm targets)")
    p_repair.add_argument("--json", action="store_true")
    p_repair.add_argument("--check", action="store_true",
                          help="CI gate: exit 1 if the repaired program "
                               "still violates, 2 on truncated coverage")
    _add_preset_flag(p_repair)
    _add_option_flags(p_repair)
    p_repair.set_defaults(func=cmd_repair)

    p_litmus = sub.add_parser(
        "litmus", help="sweep litmus suites against ground truth")
    p_litmus.add_argument("suites", nargs="*",
                          help="suite names (default: all)")
    p_litmus.add_argument("--workers", type=int, default=None,
                          help="process-pool size (default: serial)")
    p_litmus.add_argument("--json", action="store_true")
    p_litmus.add_argument("--check", action="store_true",
                          help="CI gate: exit nonzero on any violation, "
                               "truncated coverage, or a vacuous pass")
    p_litmus.add_argument("--trace", metavar="FILE",
                          help="capture a span trace of the sweep "
                               "(in-process explorations only; inspect "
                               "with `repro trace`)")
    _add_option_flags(p_litmus)
    p_litmus.set_defaults(func=cmd_litmus)

    p_table2 = sub.add_parser(
        "table2", help="reproduce the Table 2 crypto audit")
    p_table2.add_argument("--workers", type=int, default=None,
                          help="process-pool size (default: serial)")
    p_table2.add_argument("--json", action="store_true")
    _add_preset_flag(p_table2)
    _add_option_flags(p_table2)
    p_table2.set_defaults(func=cmd_table2)

    def add_endpoint_flags(p):
        p.add_argument("--socket", metavar="PATH",
                       help="daemon Unix socket (default: "
                            "$REPRO_SERVE_SOCKET or a per-user temp path)")
        p.add_argument("--host", help="daemon TCP host (instead of a "
                                      "Unix socket)")
        p.add_argument("--port", type=int, default=0, help="daemon TCP port")

    p_serve = sub.add_parser(
        "serve", help="run the resident analysis daemon (warm worker "
                      "pool + persistent result store)")
    add_endpoint_flags(p_serve)
    p_serve.add_argument("--store", metavar="DIR",
                         help="persist results in this directory "
                              "(content-addressed; shared with "
                              "AnalysisManager store=)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="warm pool size (default: CPU count)")
    p_serve.add_argument("--stop", action="store_true",
                         help="ask a running daemon to shut down")
    p_serve.add_argument("--no-drain", action="store_true",
                         help="with --stop: don't wait for in-flight jobs")
    p_serve.add_argument("--stats", action="store_true",
                         help="print a running daemon's stats and exit")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="run one analysis via the daemon (analyze's "
                       "flags and exit codes)")
    p_submit.add_argument("target",
                          help="litmus case, case-study variant, or .s file")
    p_submit.add_argument("-a", "--analysis", default="pitchfork",
                          help="registered analysis name "
                               "(default: pitchfork)")
    p_submit.add_argument("--reg", action="append", metavar="NAME=VAL",
                          help="initial register (asm targets; repeatable)")
    p_submit.add_argument("--pc", type=int, help="entry point (asm targets)")
    p_submit.add_argument("--json", action="store_true")
    p_submit.add_argument("--check", action="store_true",
                          help="CI gate: exit nonzero on any violation, "
                               "truncated coverage, or a vacuous pass")
    p_submit.add_argument("--progress", action="store_true",
                          help="stream per-shard progress to stderr")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="give up after this many seconds (exit 3)")
    p_submit.add_argument("--trace", metavar="FILE",
                          help="capture the client-side RPC phases plus "
                               "the report's telemetry section (implies "
                               "--telemetry)")
    add_endpoint_flags(p_submit)
    _add_preset_flag(p_submit)
    _add_option_flags(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_trace = sub.add_parser(
        "trace", help="inspect a --trace span capture")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsummary = trace_sub.add_parser(
        "summary", help="aggregate span counts/wall time per series")
    p_tsummary.add_argument("file", help="a --trace capture (JSONL)")
    p_tsummary.add_argument("--json", action="store_true")
    p_tsummary.set_defaults(func=cmd_trace)
    p_texport = trace_sub.add_parser(
        "export", help="convert a capture (chrome trace_event or JSONL)")
    p_texport.add_argument("file", help="a --trace capture (JSONL)")
    p_texport.add_argument("--format", choices=("chrome", "jsonl"),
                           default="chrome",
                           help="chrome: Perfetto/chrome://tracing "
                                "loadable JSON (default)")
    p_texport.add_argument("-o", "--output", metavar="FILE",
                           help="write here instead of stdout")
    p_texport.set_defaults(func=cmd_trace)

    p_results = sub.add_parser(
        "results", help="list / GC stored analysis results")
    add_endpoint_flags(p_results)
    p_results.add_argument("--store", metavar="DIR",
                           help="open this store directory directly "
                                "(no daemon needed)")
    p_results.add_argument("--limit", type=int, default=50,
                           help="show at most N newest entries")
    p_results.add_argument("--gc", type=int, metavar="N",
                           help="evict oldest entries beyond N "
                                "(needs --store)")
    p_results.add_argument("--max-age", type=float, metavar="SECONDS",
                           help="evict entries older than this "
                                "(needs --store)")
    p_results.add_argument("--clear", action="store_true",
                           help="drop every stored entry (needs --store)")
    p_results.add_argument("--json", action="store_true")
    p_results.set_defaults(func=cmd_results)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as exc:
        # raise SystemExit("message") sites (unknown targets/suites,
        # bad --reg): without this, Python maps a string payload to
        # exit 1 — indistinguishable from "violation found".
        if exc.code is None or isinstance(exc.code, int):
            raise
        print(f"error: {exc.code}", file=sys.stderr)
        return 3
    except (KeyError, ValueError) as exc:
        # Bad knob values, unknown analyses/suites: a clean CLI error,
        # not a traceback.  Exit 3 keeps usage errors distinct from the
        # --check gate's exit 2 (truncated/vacuous coverage).
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
