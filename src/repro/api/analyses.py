"""Pluggable analyses over a :class:`~repro.api.project.Project`.

Each analysis wraps one existing engine behind the uniform contract
``run(project, **option_overrides) -> Report``:

* :class:`PitchforkAnalysis` — one Pitchfork exploration (§4.1/4.2);
* :class:`TwoPhaseAnalysis` — the paper's §4.2.1 two-phase procedure
  with the Table 2 ``clean``/``v1``/``f`` classification;
* :class:`SCTAnalysis` — the full two-trace Definition 3.1 check over
  enumerated tool schedules and secret variations;
* :class:`CacheAttackAnalysis` — folds a violating trace into the cache
  model (§3.1's "the cache is a function of the observations");
* :class:`MetatheoryAnalysis` — replays the Appendix B theorem checks
  on this target under random well-formed schedules;
* :class:`RepairAnalysis` — counterexample-guided mitigation synthesis
  (:mod:`repro.mitigate`): localize the violations, place minimal
  fences / SLH masks, re-verify, and report the repair certificate in
  the report's ``mitigation`` section.

Analyses register themselves by name; discover them via
``Project.analyses`` (attribute style, angr's ``project.analyses.CFG()``
idiom) or :func:`get_analysis` / :func:`available_analyses`.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Type

from ..core.sct import check_sct
from ..engine import ExecutionEngine
from ..pitchfork import (analyze, analyze_symbolic_result,
                         enumerate_schedules)
from .project import AnalysisOptions, Project
from .report import (PhaseReport, Report, from_analysis_report,
                     summarize_counterexample, summarize_finding)

_REGISTRY: Dict[str, Type["Analysis"]] = {}

#: Convenience spellings accepted by :func:`get_analysis`.
_ALIASES = {
    "two_phase": "two-phase",
    "twophase": "two-phase",
    "table2": "two-phase",
    "cache": "cache-attack",
    "cache_attack": "cache-attack",
    "mitigate": "repair",
    "mitigation": "repair",
    "speculation-passing": "sps",
    "speculation_passing": "sps",
}


def register(cls: Type["Analysis"]) -> Type["Analysis"]:
    """Class decorator adding an analysis to the registry."""
    if not getattr(cls, "name", None):
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def get_analysis(name) -> "Analysis":
    """Instantiate a registered analysis by name (or pass one through)."""
    if isinstance(name, Analysis):
        return name
    if isinstance(name, type) and issubclass(name, Analysis):
        return name()
    key = str(name).lower().replace(" ", "-")
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]()
    except KeyError:
        raise KeyError(f"unknown analysis {name!r}; "
                       f"available: {sorted(_REGISTRY)}") from None


def available_analyses() -> Dict[str, str]:
    """Registered analysis names → one-line descriptions."""
    return {name: cls.description for name, cls in sorted(_REGISTRY.items())}


def available_aliases() -> Dict[str, str]:
    """Accepted analysis aliases → the registered name they resolve to.

    These are real CLI/API spellings (``repro analyze -a mitigate`` runs
    the ``repair`` analysis), so ``repro list`` prints them alongside
    the registry.
    """
    return dict(sorted(_ALIASES.items()))


class Analysis:
    """Base contract: ``run(project, **overrides) -> Report``."""

    name: str = ""
    description: str = ""

    def run(self, project: Project, **overrides) -> Report:
        options = project.options.with_(**overrides)
        t0 = time.perf_counter()
        report = self._run(project, options)
        if report.wall_time == 0.0:
            report = report.with_(wall_time=time.perf_counter() - t0)
        return report

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class AnalysisHub:
    """``project.analyses`` — attribute access to the registry, bound to
    one project.  Lowercase attribute names map to registered analyses
    (dashes become underscores): ``project.analyses.two_phase()``."""

    def __init__(self, project: Project):
        self._project = project

    def __getattr__(self, name: str):
        key = name.replace("_", "-")
        if key not in _REGISTRY:
            raise AttributeError(
                f"no analysis {name!r}; available: {sorted(_REGISTRY)}")
        analysis = _REGISTRY[key]()
        return lambda **overrides: analysis.run(self._project, **overrides)

    def __iter__(self):
        return iter(sorted(_REGISTRY))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AnalysisHub {sorted(_REGISTRY)} on {self._project.name!r}>"


def _explore(project: Project, options: AnalysisOptions, *,
             bound: int, fwd_hazards: bool):
    """One Pitchfork run with the project's full knob set."""
    return analyze(project.program, project.config(), bound=bound,
                   fwd_hazards=fwd_hazards, name=project.name,
                   stop_at_first=options.stop_at_first,
                   explore_aliasing=options.explore_aliasing,
                   jmpi_targets=options.jmpi_targets,
                   rsb_targets=options.rsb_targets,
                   max_paths=options.max_paths,
                   max_steps=options.max_steps,
                   rsb_policy=options.rsb_policy,
                   strategy=options.strategy,
                   shards=options.shards,
                   seed=options.seed,
                   prune=options.prune,
                   subsume=options.subsume,
                   budget_seconds=options.budget_seconds,
                   mcts_c=options.mcts_c,
                   mcts_playout=options.mcts_playout,
                   telemetry=options.telemetry)


@register
class PitchforkAnalysis(Analysis):
    """One worst-case-schedule exploration at ``options.bound``."""

    name = "pitchfork"
    description = ("single Pitchfork exploration: flag secret-dependent "
                   "observations under worst-case schedules (§4.1)")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        t0 = time.perf_counter()
        report = _explore(project, options, bound=options.bound,
                          fwd_hazards=options.fwd_hazards)
        details = {"strategy": options.strategy, "shards": options.shards,
                   "prune": options.prune, "subsume": options.subsume}
        if options.strategy == "random":
            details["seed"] = options.seed
        if options.strategy == "mcts":
            details["mcts_c"] = options.mcts_c
            details["mcts_playout"] = options.mcts_playout
        if options.budget_seconds is not None:
            details["budget_seconds"] = options.budget_seconds
        return from_analysis_report(report, project.name, self.name,
                                    wall_time=time.perf_counter() - t0,
                                    details=details)


@register
class SpsAnalysis(Analysis):
    """Speculation-passing second opinion (:mod:`repro.sps`).

    Compiles the speculative directives into the program as explicit
    nondeterminism and decides speculative constant time by a plain
    sequential check of the product — no reorder buffer, no schedules.
    Shares no engine code with ``pitchfork``, so agreement between the
    two is strong evidence (see ``repro analyze --cross-check`` and the
    :mod:`repro.sps.diff` harness).
    """

    name = "sps"
    description = ("speculation-passing second opinion: sequential CT "
                   "check of the speculative product program (repro.sps)")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        from ..pitchfork.detector import AnalysisReport
        from ..sps import explore_sps
        t0 = time.perf_counter()
        result = explore_sps(
            project.program, project.config(), bound=options.bound,
            fwd_hazards=options.fwd_hazards,
            explore_aliasing=options.explore_aliasing,
            jmpi_targets=options.jmpi_targets,
            rsb_targets=options.rsb_targets,
            rsb_policy=options.rsb_policy,
            max_paths=options.max_paths,
            max_steps=options.max_steps,
            stop_at_first=options.stop_at_first)
        details = {"speculation_sites": dict(result.sites),
                   "exhausted_paths": result.exhausted_paths}
        # The sequential check has no schedule search, so the search
        # knobs have nothing to act on.  Surfaced, never silently
        # dropped (the ``*_ignored`` convention).
        if options.strategy != "dfs":
            details["strategy_ignored"] = options.strategy
        if options.shards > 1:
            details["shards_ignored"] = options.shards
        if options.prune != "sleepset":
            details["prune_ignored"] = options.prune
        if options.subsume:
            details["subsume_ignored"] = True
        if options.budget_seconds is not None:
            details["budget_ignored"] = options.budget_seconds
        if options.telemetry:
            details["telemetry_ignored"] = True
        report = AnalysisReport(
            name=project.name, secure=result.secure,
            violations=tuple(result.violations),
            paths_explored=result.paths_explored,
            states_stepped=result.states_stepped,
            truncated=not result.complete,
            phase="sps", bound=options.bound)
        return from_analysis_report(report, project.name, self.name,
                                    wall_time=time.perf_counter() - t0,
                                    details=details)


@register
class TwoPhaseAnalysis(Analysis):
    """The paper's §4.2.1 procedure, classifying ``clean``/``v1``/``f``.

    Phase 1 hunts v1/v1.1 without forwarding hazards at
    ``options.bound_no_fwd``; only if clean, phase 2 re-runs with
    forwarding-hazard detection at ``options.bound_fwd``.
    """

    name = "two-phase"
    description = ("the paper's two-phase audit (§4.2.1): v1/v1.1 at the "
                   "big bound, then v4 at the reduced bound; classifies "
                   "clean/v1/f")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        t0 = time.perf_counter()
        first = _explore(project, options, bound=options.bound_no_fwd,
                         fwd_hazards=False)
        t1 = time.perf_counter()
        phases = [PhaseReport(first.phase, first.bound, first.secure,
                              first.paths_explored, first.states_stepped,
                              first.truncated, t1 - t0)]
        if not first.secure:
            return from_analysis_report(
                first, project.name, self.name, wall_time=t1 - t0,
                phases=tuple(phases),
                details={"classification": "v1"}).with_(status="v1")
        second = _explore(project, options, bound=options.bound_fwd,
                          fwd_hazards=True)
        t2 = time.perf_counter()
        phases.append(PhaseReport(second.phase, second.bound, second.secure,
                                  second.paths_explored,
                                  second.states_stepped, second.truncated,
                                  t2 - t1))
        status = "clean" if second.secure else "f"
        return from_analysis_report(
            second, project.name, self.name, wall_time=t2 - t0,
            phases=tuple(phases),
            details={"classification": status}).with_(status=status)


@register
class SymbolicAnalysis(Analysis):
    """Pitchfork's symbolic back end on the engine's schedule tree.

    Enumerates DT(``options.bound``) once — keeping the DFS fork
    structure — and replays the schedule *tree* symbolically, resuming
    every shared prefix from its snapshot instead of re-running each
    schedule from step 0 (fully concrete targets skip the replay and
    harvest the recorded traces).  Reports a solved attacker-input
    model per finding, plus step/reuse counters and honest truncation.
    """

    name = "symbolic"
    description = ("symbolic replay of the tool-schedule tree (§4.2): "
                   "solve for attacker inputs reaching secret "
                   "observations; prefix-shared via repro.engine")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        t0 = time.perf_counter()
        result = analyze_symbolic_result(
            project.program, project.config(), bound=options.bound,
            fwd_hazards=options.fwd_hazards,
            max_schedules=options.max_schedules,
            max_worlds=options.max_worlds,
            strategy=options.strategy, seed=options.seed,
            prune=options.prune)
        details = {"worlds": result.replay.worlds,
                   "solver_calls": result.replay.solver_calls,
                   "prune": options.prune}
        if options.shards > 1:
            # The symbolic replay is not sharded (only the explorer
            # is); surface the ignored knob instead of dropping it.
            details["shards_ignored"] = options.shards
        if options.subsume:
            # Concrete-state subsumption is unsound for symbolic
            # replay: two equal concrete configurations may differ in
            # the symbolic worlds reaching them, so pruning one would
            # drop satisfiable attacker models.  Ignored, and said so.
            details["subsume_ignored"] = True
        if options.budget_seconds is not None:
            # The symbolic replay has no anytime mode: a partial
            # symbolic sweep cannot report honest coverage the way the
            # frontier can.  Surfaced, not silently dropped.
            details["budget_ignored"] = options.budget_seconds
        if options.telemetry:
            # Search telemetry instruments the frontier pop loop, which
            # the symbolic replay does not drive.  Surfaced, not dropped.
            details["telemetry_ignored"] = True
        return Report(
            target=project.name, analysis=self.name,
            status="secure" if result.secure else "insecure",
            secure=result.secure,
            violations=tuple(summarize_finding(f) for f in result.findings),
            paths_explored=result.schedules,
            states_stepped=result.states_stepped,
            states_reused=result.states_reused,
            truncated=result.truncated,
            wall_time=time.perf_counter() - t0,
            details=details,
        )


@register
class SCTAnalysis(Analysis):
    """The full two-trace SCT check (Definition 3.1).

    Enumerates tool schedules at ``options.sct_bound`` and quantifies
    over auto-generated low-equivalent secret variations.  A vacuous
    verdict (no pair actually checked) is surfaced, never silently
    reported as secure.
    """

    name = "sct"
    description = ("two-trace Definition 3.1 check over enumerated tool "
                   "schedules and secret variations; flags vacuous passes")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        t0 = time.perf_counter()
        machine = project.machine()
        config = project.config()
        schedules = enumerate_schedules(
            machine, config, bound=options.sct_bound,
            fwd_hazards=options.fwd_hazards,
            max_paths=options.sct_max_schedules,
            prune=options.prune)
        # Run the two-trace product on the engine so the quantifier's
        # work (every schedule × every partner, twice per pair) shows
        # up in the report's step counters.
        engine = ExecutionEngine(machine)
        result = check_sct(engine, config, schedules)
        counterexamples = ()
        if result.counterexample is not None:
            counterexamples = (
                summarize_counterexample(result.counterexample),)
        return Report(
            target=project.name, analysis=self.name,
            status="secure" if result.ok else "insecure",
            secure=result.ok,
            counterexamples=counterexamples,
            paths_explored=len(schedules),
            states_stepped=engine.stats.steps,
            states_reused=engine.stats.avoided,
            vacuous=result.vacuous,
            wall_time=time.perf_counter() - t0,
            details={"pairs_checked": result.pairs_checked,
                     "schedules": len(schedules),
                     **({"telemetry_ignored": True}
                        if options.telemetry else {})},
        )


@register
class CacheAttackAnalysis(Analysis):
    """Cache-visibility of a violation (§3.1's cache-as-fold argument).

    Runs Pitchfork; if a violation is found, folds its witnessing trace
    into a set-associative cache and reports which data addresses became
    attacker-probeable — the bridge from semantics observations to a
    real Flush+Reload measurement.
    """

    name = "cache-attack"
    description = ("fold a violating trace into the cache model and "
                   "report the attacker-probeable footprint (§3.1)")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        from ..cache import Cache, CacheConfig, replay
        from ..cache.cache import addresses_touching_cache
        t0 = time.perf_counter()
        report = _explore(project, options, bound=options.bound,
                          fwd_hazards=options.fwd_hazards)
        base = from_analysis_report(report, project.name, self.name,
                                    wall_time=time.perf_counter() - t0)
        if report.secure:
            return base
        trace = report.violations[0].trace
        cache = replay(trace, Cache(CacheConfig(sets=64, ways=4,
                                                line_size=4)))
        touched = addresses_touching_cache(trace)
        probeable = sorted({a for a in touched if cache.probe(a)})
        details = dict(base.details)
        details.update({
            "lines_touched": len({cache.line_of(a) for a in touched}),
            "probeable_addresses": [hex(a) for a in probeable],
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
        })
        return base.with_(details=details)


@register
class RepairAnalysis(Analysis):
    """Counterexample-guided mitigation synthesis (:mod:`repro.mitigate`).

    Runs the repair→re-verify loop with this project's full exploration
    knob set (bound, hazards, aliasing, strategy, sharding): localize
    each violation to its program points, place a targeted fence or SLH
    mask, re-run the verifier, and — once clean — delta-debug the
    placement down to a locally minimal one.  The report's ``status``
    is the repair outcome (``already-secure`` / ``repaired`` /
    ``sequential-residual`` / ``gave-up``); the ``mitigation`` section
    carries the machine-checkable certificate (re-assembleable repaired
    source + per-site steps + cost against the blanket baseline).
    ``secure`` is True only when the repaired program verifies fully
    clean — a ``sequential-residual`` outcome means the *speculative*
    leaks are gone but the program was never sequentially constant-time
    (no fence placement can fix that), so it still gates ``--check``.
    """

    name = "repair"
    description = ("counterexample-guided mitigation synthesis: localize "
                   "violations, place minimal fences/SLH masks, re-verify, "
                   "shrink (repro.mitigate)")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        from ..mitigate import repair
        t0 = time.perf_counter()
        result = repair(
            project.program, project.config(), name=project.name,
            policy=options.policy, max_rounds=options.max_repair_rounds,
            shrink=options.shrink, rsb_policy=options.rsb_policy,
            bound=options.bound, fwd_hazards=options.fwd_hazards,
            explore_aliasing=options.explore_aliasing,
            jmpi_targets=options.jmpi_targets,
            rsb_targets=options.rsb_targets,
            max_paths=options.max_paths, max_steps=options.max_steps,
            strategy=options.strategy, shards=options.shards,
            seed=options.seed, prune=options.prune,
            subsume=options.subsume)
        final = result.final_report
        secure = result.status in ("already-secure", "repaired")
        details = {"policy": options.policy,
                   "verifications": result.verifications,
                   "rounds": result.rounds,
                   "strategy": options.strategy,
                   "shards": options.shards,
                   "prune": options.prune,
                   "subsume": options.subsume}
        if options.budget_seconds is not None:
            # Repair re-verifies to a *certificate*; a wall-clock cut
            # mid-loop would certify nothing.  Surfaced, not dropped.
            details["budget_ignored"] = options.budget_seconds
        if options.telemetry:
            # The repair loop runs many re-verifications; a single
            # heatmap over all of them would be misleading.  Surfaced.
            details["telemetry_ignored"] = True
        wall = time.perf_counter() - t0
        # NB: AnalysisReport.__bool__ is "secure" — guard on None, not
        # truthiness, or insecure final reports zero these fields out.
        if final is None:
            return Report(target=project.name, analysis=self.name,
                          status=result.status, secure=secure,
                          wall_time=wall, mitigation=result.certificate,
                          details=details)
        # Lift the final verification run as usual, then overlay the
        # repair outcome and the loop-wide step accounting (every
        # re-verification, not just the last one).
        return from_analysis_report(
            final, project.name, self.name, wall_time=wall,
            details=details,
        ).with_(status=result.status, secure=secure,
                states_stepped=result.states_stepped,
                states_reused=result.states_reused,
                mitigation=result.certificate)


@register
class MetatheoryAnalysis(Analysis):
    """Appendix B theorem checks on *this* target.

    Replays determinism (B.1), sequential equivalence (3.2), label
    stability (B.9) and consistency (B.8) under ``options.experiments``
    random well-formed schedules drawn with ``options.seed``.
    """

    name = "metatheory"
    description = ("replay the Appendix B theorem checks on this target "
                   "under random well-formed schedules")

    def _run(self, project: Project, options: AnalysisOptions) -> Report:
        from ..verify.generators import random_schedule
        from ..verify.theorems import (check_consistency, check_determinism,
                                       check_label_stability,
                                       check_sequential_equivalence)
        t0 = time.perf_counter()
        # The theorem checks replay each drawn schedule several times
        # (determinism runs it twice, consistency replays pairs); the
        # engine counts that work so it lands in the report.
        machine = ExecutionEngine(project.machine())
        config = project.config()
        rng = random.Random(options.seed)
        failures: List[Dict[str, str]] = []
        experiments = skipped = 0
        drained = []
        for _ in range(options.experiments):
            schedule, _final = random_schedule(machine, config, rng)
            drained.append(schedule)
            checks = [
                check_determinism(machine, config, schedule),
                check_sequential_equivalence(machine, config, schedule),
                check_label_stability(machine, config, schedule),
            ]
            for check in checks:
                experiments += 1
                if not check.ok:
                    failures.append({"observation": check.theorem,
                                     "step_index": -1,
                                     "directive": check.detail,
                                     "schedule_tail": [], "trace_tail": []})
                elif check.detail.startswith("skipped"):
                    skipped += 1
        for a, b in zip(drained, drained[1:]):
            experiments += 1
            check = check_consistency(machine, config, a, b)
            if not check.ok:
                failures.append({"observation": check.theorem,
                                 "step_index": -1,
                                 "directive": check.detail,
                                 "schedule_tail": [], "trace_tail": []})
            elif check.detail.startswith("skipped"):
                skipped += 1
        ok = not failures
        return Report(
            target=project.name, analysis=self.name,
            status="ok" if ok else "fail",
            secure=ok,
            violations=tuple(failures),
            paths_explored=len(drained),
            states_stepped=machine.stats.steps,
            states_reused=machine.stats.avoided,
            wall_time=time.perf_counter() - t0,
            details={"experiments": experiments, "skipped": skipped,
                     "seed": options.seed},
        )
