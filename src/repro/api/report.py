"""The unified analysis result model.

Every :class:`repro.api.analyses.Analysis` returns a :class:`Report`,
whatever engine it wraps — the Pitchfork explorer's
:class:`~repro.pitchfork.detector.AnalysisReport`, the SCT checker's
:class:`~repro.core.sct.SCTResult`, the metatheory sweep's
:class:`~repro.verify.theorems.MetatheoryStats`, or the Table 2
classification strings.  A report carries:

* a ``status`` (``"secure"``/``"insecure"`` for single detectors,
  ``"clean"``/``"v1"``/``"f"`` for the two-phase procedure,
  ``"ok"``/``"fail"`` for metatheory);
* serialisable violation/counterexample summaries;
* path/step counters and a per-phase breakdown;
* wall time and the options that produced it.

``to_dict()``/``to_json()`` feed the CLI's ``--json`` mode and the
result cache; ``from_dict()``/``from_json()`` invert them exactly
(``Report.from_json(r.to_json()) == r``); ``render()`` is the
human-readable view.  Serialised reports carry a ``schema_version`` so
downstream consumers can detect shape changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

#: Statuses that count as "no violation found".
CLEAN_STATUSES = frozenset({"secure", "clean", "ok", "already-secure",
                            "repaired"})

#: Version of the serialised report shape.  8 added the ``cross_check``
#: section (backend agreement from ``repro analyze --cross-check``:
#: ``backends``, per-backend sorted flagged-observation lists and
#: completeness flags, the ``agree`` verdict and its ``classification``
#: — ``agree`` / ``explained-budget`` / ``disagree`` — plus per-backend
#: wall times, the only volatile fields, zeroed by the store's
#: ``strip_volatile``);
#: 7 added the ``telemetry``
#: section (search telemetry from :mod:`repro.obs.telemetry`: the
#: per-fetch-PC exploration ``heatmap``, the per-fork-level completed
#: schedule histogram ``fork_levels``, ``pops``, and ``wall_time`` —
#: the only volatile field, zeroed by the store's ``strip_volatile``);
#: 6 added the ``anytime``
#: section (honest coverage stats for wall-clock-budgeted runs:
#: budget_seconds, budget_consumed, deadline_hit, paths_explored,
#: frontier_remaining, first_violation_time) and ``first_violation``
#: (deterministic time-to-first-violation: pops, steps, wall_time);
#: 5 added the ``subsumption``
#: section (redundant-state-subsumption stats from
#: :mod:`repro.engine.subsume`: enabled, states_seen, states_subsumed);
#: 4 added the ``pruning`` section (partial-order-reduction stats from
#: :mod:`repro.engine.por`: level, classes_explored, schedules_skipped);
#: 3 added the ``mitigation`` section (the repair certificate emitted by
#: :mod:`repro.mitigate`); 2 added ``schema_version`` itself, the
#: search-strategy fields and per-shard stats; 1 (implicit, no marker)
#: is the pre-sharding shape.  All older versions are still accepted by
#: :meth:`Report.from_dict`.
SCHEMA_VERSION = 8


@dataclass(frozen=True)
class PhaseReport:
    """One engine run inside an analysis (e.g. one §4.2.1 phase)."""

    name: str                  #: "v1/v1.1", "v4", "sct", …
    bound: int
    secure: bool
    paths_explored: int = 0
    states_stepped: int = 0
    truncated: bool = False
    wall_time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        # Floats are serialised exactly (json round-trips them), so
        # from_dict(to_dict(p)) == p.
        return {
            "name": self.name,
            "bound": self.bound,
            "secure": self.secure,
            "paths_explored": self.paths_explored,
            "states_stepped": self.states_stepped,
            "truncated": self.truncated,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhaseReport":
        return cls(**{f: data[f] for f in
                      ("name", "bound", "secure", "paths_explored",
                       "states_stepped", "truncated", "wall_time")
                      if f in data})


@dataclass(frozen=True)
class ShardReport:
    """One shard of a sharded exploration (job = schedule prefix +
    initial config; see :mod:`repro.pitchfork.sharding`)."""

    index: int                 #: position in the deterministic merge order
    prefix_len: int            #: schedule-prefix actions replayed
    paths_explored: int = 0
    violations: int = 0
    states_stepped: int = 0
    truncated: bool = False
    wall_time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "prefix_len": self.prefix_len,
            "paths_explored": self.paths_explored,
            "violations": self.violations,
            "states_stepped": self.states_stepped,
            "truncated": self.truncated,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardReport":
        return cls(**{f: data[f] for f in
                      ("index", "prefix_len", "paths_explored", "violations",
                       "states_stepped", "truncated", "wall_time")
                      if f in data})


def summarize_violation(violation) -> Dict[str, Any]:
    """A JSON-able digest of a :class:`repro.pitchfork.Violation`."""
    return {
        "observation": repr(violation.observation),
        "step_index": violation.step_index,
        "directive": repr(violation.directive),
        "schedule_tail": [repr(d) for d in violation.schedule[-8:]],
        "trace_tail": [repr(o) for o in violation.trace[-6:]],
    }


def summarize_finding(finding) -> Dict[str, Any]:
    """A JSON-able digest of a
    :class:`repro.pitchfork.SymbolicFinding`.

    A finding records the witnessing schedule and a solved input model
    but not the position of the observation within the schedule, so —
    unlike :func:`summarize_violation` — no ``step_index``/``directive``
    is reported rather than a misleading one.
    """
    return {
        "observation": repr(finding.observation),
        "schedule_tail": [repr(d) for d in finding.schedule[-8:]],
        "model": {k: v for k, v in sorted(finding.model.items())},
        "constraints": [repr(c) for c in finding.constraints],
    }


def summarize_counterexample(cex) -> Dict[str, Any]:
    """A JSON-able digest of an :class:`repro.core.SCTCounterExample`."""
    return {
        "reason": cex.reason,
        "first_divergence": cex.first_divergence(),
        "schedule_tail": [repr(d) for d in cex.schedule[-8:]],
        "trace_a_tail": [repr(o) for o in cex.trace_a[-6:]],
        "trace_b_tail": [repr(o) for o in cex.trace_b[-6:]],
    }


@dataclass(frozen=True)
class Report:
    """Outcome of one analysis of one target."""

    target: str                #: project name
    analysis: str              #: registered analysis name
    status: str
    secure: Optional[bool] = None
    violations: Tuple[Dict[str, Any], ...] = ()
    counterexamples: Tuple[Dict[str, Any], ...] = ()
    paths_explored: int = 0
    #: Machine steps actually executed.  Disjoint from
    #: ``states_reused`` for every analysis: stepped + reused is what
    #: the same work would cost without sharing.
    states_stepped: int = 0
    #: Machine steps the execution engine served from shared prefixes,
    #: recorded snapshots, or its trial-step cache instead of
    #: re-executing — the observable half of the engine's speedup.
    states_reused: int = 0
    truncated: bool = False
    #: The SCT quantifier found no real pair to check (see
    #: ``SCTResult.vacuous``): "secure" by emptiness, not by evidence.
    vacuous: bool = False
    wall_time: float = 0.0
    phases: Tuple[PhaseReport, ...] = ()
    #: Per-shard accounting when the exploration ran sharded (empty for
    #: single-process runs).
    shard_stats: Tuple[ShardReport, ...] = ()
    #: The machine-checkable repair certificate when the analysis was a
    #: mitigation synthesis (see
    #: :attr:`repro.mitigate.RepairResult.certificate`): the repaired
    #: program as re-assembleable source, the per-site steps, fence/SLH
    #: counts against the blanket baseline, and the overhead numbers.
    mitigation: Optional[Mapping[str, Any]] = None
    #: Partial-order-reduction stats when the exploration ran with a
    #: pruning level (see :mod:`repro.engine.por`): ``level``,
    #: ``classes_explored`` (completed Mazurkiewicz-class
    #: representatives) and ``schedules_skipped`` (pruned subtree
    #: roots).  None for analyses without a schedule exploration.
    pruning: Optional[Mapping[str, Any]] = None
    #: Redundant-state-subsumption stats when the exploration ran with
    #: the SeenStates table (see :mod:`repro.engine.subsume`):
    #: ``enabled``, ``states_seen`` (canonical states recorded) and
    #: ``states_subsumed`` (fork arms pruned as already covered).  None
    #: for analyses without a schedule exploration.
    subsumption: Optional[Mapping[str, Any]] = None
    #: Honest anytime coverage when the run had a wall-clock budget
    #: (see :class:`repro.pitchfork.explorer.AnytimeStats`):
    #: ``budget_seconds``, ``budget_consumed``, ``deadline_hit``,
    #: ``paths_explored``, ``frontier_remaining``,
    #: ``first_violation_time``.  None for unbudgeted runs.  A
    #: deadline-truncated run always also reports ``truncated`` — the
    #: anytime contract forbids reporting clean coverage it didn't buy.
    anytime: Optional[Mapping[str, Any]] = None
    #: Deterministic time-to-first-violation (``pops``, ``steps``,
    #: ``wall_time``) when the exploration found one; lets strategies
    #: be compared on the bug-hunting objective without external
    #: timing.  None on clean runs and non-exploration analyses.
    first_violation: Optional[Mapping[str, Any]] = None
    #: Search telemetry when the run was asked for it
    #: (``telemetry=True``; see :mod:`repro.obs.telemetry`):
    #: ``heatmap`` (pops per fetch PC, stringified-int keys),
    #: ``fork_levels`` (completed schedules per fork depth, same key
    #: convention), ``pops``, ``wall_time``.  Everything except
    #: ``wall_time`` is deterministic for a fixed configuration
    #: (including the shard count).  None when telemetry was off.
    telemetry: Optional[Mapping[str, Any]] = None
    #: Backend agreement when the run was cross-checked
    #: (``repro analyze --cross-check``; see :mod:`repro.sps.diff`):
    #: ``backends`` (the pair compared), per-backend
    #: ``<name>_observations`` (sorted flagged-observation reprs) and
    #: ``<name>_complete`` (no budget interfered), the ``agree``
    #: verdict, and its ``classification`` — ``"agree"``,
    #: ``"explained-budget"`` (sets differ but a budget truncated at
    #: least one side) or ``"disagree"`` (both complete yet different:
    #: a real bug in one backend).  Per-backend wall times are the only
    #: volatile fields.  None when no cross-check ran.
    cross_check: Optional[Mapping[str, Any]] = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def ok(self) -> bool:
        """True when the analysis found nothing wrong."""
        if self.secure is not None:
            return self.secure
        return self.status in CLEAN_STATUSES

    def with_(self, **kw) -> "Report":
        """Functional record update."""
        return replace(self, **kw)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "target": self.target,
            "analysis": self.analysis,
            "status": self.status,
            "secure": self.secure,
            "violations": list(self.violations),
            "counterexamples": list(self.counterexamples),
            "paths_explored": self.paths_explored,
            "states_stepped": self.states_stepped,
            "states_reused": self.states_reused,
            "truncated": self.truncated,
            "vacuous": self.vacuous,
            "wall_time": self.wall_time,
            "phases": [p.to_dict() for p in self.phases],
            "shard_stats": [s.to_dict() for s in self.shard_stats],
            "mitigation": (dict(self.mitigation)
                           if self.mitigation is not None else None),
            "pruning": (dict(self.pruning)
                        if self.pruning is not None else None),
            "subsumption": (dict(self.subsumption)
                            if self.subsumption is not None else None),
            "anytime": (dict(self.anytime)
                        if self.anytime is not None else None),
            "first_violation": (dict(self.first_violation)
                                if self.first_violation is not None
                                else None),
            "telemetry": (dict(self.telemetry)
                          if self.telemetry is not None else None),
            "cross_check": (dict(self.cross_check)
                            if self.cross_check is not None else None),
            "details": dict(self.details),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Report":
        """Invert :meth:`to_dict` (accepts all older schema versions)."""
        version = data.get("schema_version", 1)
        if version > SCHEMA_VERSION:
            raise ValueError(f"report schema_version {version} is newer "
                             f"than supported ({SCHEMA_VERSION})")
        return cls(
            target=data["target"],
            analysis=data["analysis"],
            status=data["status"],
            secure=data.get("secure"),
            violations=tuple(dict(v) for v in data.get("violations", ())),
            counterexamples=tuple(dict(c) for c
                                  in data.get("counterexamples", ())),
            paths_explored=data.get("paths_explored", 0),
            states_stepped=data.get("states_stepped", 0),
            states_reused=data.get("states_reused", 0),
            truncated=data.get("truncated", False),
            vacuous=data.get("vacuous", False),
            wall_time=data.get("wall_time", 0.0),
            phases=tuple(PhaseReport.from_dict(p)
                         for p in data.get("phases", ())),
            shard_stats=tuple(ShardReport.from_dict(s)
                              for s in data.get("shard_stats", ())),
            mitigation=(dict(data["mitigation"])
                        if data.get("mitigation") is not None else None),
            pruning=(dict(data["pruning"])
                     if data.get("pruning") is not None else None),
            subsumption=(dict(data["subsumption"])
                         if data.get("subsumption") is not None else None),
            anytime=(dict(data["anytime"])
                     if data.get("anytime") is not None else None),
            first_violation=(dict(data["first_violation"])
                             if data.get("first_violation") is not None
                             else None),
            telemetry=(dict(data["telemetry"])
                       if data.get("telemetry") is not None else None),
            cross_check=(dict(data["cross_check"])
                         if data.get("cross_check") is not None else None),
            details=dict(data.get("details", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "Report":
        return cls.from_dict(json.loads(text))

    # -- rendering -----------------------------------------------------------

    def render(self, max_violations: int = 5) -> str:
        """Human-readable multi-line summary."""
        reused = (f", {self.states_reused} reused"
                  if self.states_reused else "")
        sharded = (f", {len(self.shard_stats)} shards"
                   if self.shard_stats else "")
        pruned = ""
        if self.pruning is not None and \
                self.pruning.get("schedules_skipped"):
            pruned = (f", {self.pruning['schedules_skipped']} pruned "
                      f"[{self.pruning.get('level', '?')}]")
        subsumed = ""
        if self.subsumption is not None and \
                self.subsumption.get("states_subsumed"):
            subsumed = f", {self.subsumption['states_subsumed']} subsumed"
        head = (f"[{self.analysis}] {self.target}: {self.status.upper()} "
                f"({self.paths_explored} paths, {self.states_stepped} steps"
                f"{reused}{sharded}{pruned}{subsumed}, {self.wall_time:.2f}s"
                f"{', truncated' if self.truncated else ''}"
                f"{', VACUOUS' if self.vacuous else ''})")
        lines = [head]
        if self.anytime is not None:
            a = self.anytime
            hit = "deadline hit" if a.get("deadline_hit") else "under budget"
            first = (f", first violation at "
                     f"{a['first_violation_time']:.3f}s"
                     if a.get("first_violation_time") is not None else "")
            lines.append(
                f"  anytime: {a.get('budget_consumed', 0.0):.2f}s of "
                f"{a.get('budget_seconds', 0.0):.2f}s budget ({hit}); "
                f"{a.get('paths_explored', 0)} paths explored, "
                f"{a.get('frontier_remaining', 0)} frontier items "
                f"remaining{first}")
        if self.first_violation is not None:
            fv = self.first_violation
            lines.append(
                f"  first violation: {fv.get('pops', '?')} pops, "
                f"{fv.get('steps', '?')} machine steps"
                + (f", {fv['wall_time']:.3f}s"
                   if fv.get("wall_time") is not None else ""))
        if self.telemetry is not None:
            t = self.telemetry
            heatmap = t.get("heatmap", {})
            hottest = max(heatmap.items(), key=lambda kv: kv[1],
                          default=None)
            hot = (f", hottest pc {hottest[0]} ×{hottest[1]}"
                   if hottest is not None else "")
            lines.append(
                f"  telemetry: {t.get('pops', 0)} pops over "
                f"{len(heatmap)} fetch PCs, "
                f"{len(t.get('fork_levels', {}))} fork levels{hot}")
        if self.cross_check is not None:
            cc = self.cross_check
            backends = cc.get("backends", ())
            verdict = cc.get("classification", "?")
            counts = ", ".join(
                f"{b}: {len(cc.get(f'{b}_observations', ()))} obs"
                f"{'' if cc.get(f'{b}_complete', True) else ' (truncated)'}"
                for b in backends)
            lines.append(f"  cross-check [{' vs '.join(backends)}]: "
                         f"{verdict.upper()} ({counts})")
        for phase in self.phases:
            lines.append(f"  phase {phase.name} [bound={phase.bound}]: "
                         f"{'secure' if phase.secure else 'VIOLATIONS'} "
                         f"({phase.paths_explored} paths, "
                         f"{phase.wall_time:.2f}s)")
        for v in self.violations[:max_violations]:
            line = f"  violation: {v['observation']}"
            if "step_index" in v:
                line += f" at step {v['step_index']} via {v['directive']}"
            if v.get("model"):
                line += f" with {v['model']}"
            lines.append(line)
        extra = len(self.violations) - max_violations
        if extra > 0:
            lines.append(f"  … and {extra} more")
        for cex in self.counterexamples[:max_violations]:
            lines.append(f"  counterexample: {cex['reason']} "
                         f"(diverges at {cex['first_divergence']})")
        if self.mitigation is not None:
            m = self.mitigation
            lines.append(
                f"  mitigation: {len(m.get('steps', ()))} site(s) — "
                f"{m.get('fences_added', 0)} fence(s) + "
                f"{m.get('slh_sites', 0)} SLH mask(s) "
                f"(blanket baseline: {m.get('blanket_fences', 0)} fences; "
                f"shrink removed {m.get('shrink_removed', 0)}; "
                f"+{m.get('overhead_steps', 0)} sequential steps)")
            for step in m.get("steps", ()):
                lines.append(f"    [{step.get('policy')}] point "
                             f"{step.get('site_pp')} ({step.get('cause')})")
            if m.get("sequential_leaks"):
                lines.append(f"    sequential residue (not repairable by "
                             f"fencing): {m['sequential_leaks']}")
        for key, value in self.details.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Report({self.analysis} on {self.target!r}: {self.status}, "
                f"{len(self.violations)} violations)")


def from_analysis_report(report, target: str, analysis: str,
                         wall_time: float = 0.0,
                         details: Optional[Mapping[str, Any]] = None,
                         phases: Tuple[PhaseReport, ...] = ()) -> Report:
    """Lift a legacy :class:`~repro.pitchfork.AnalysisReport`."""
    phases = phases or (PhaseReport(report.phase, report.bound,
                                    report.secure, report.paths_explored,
                                    report.states_stepped, report.truncated,
                                    wall_time),)
    return Report(
        target=target,
        analysis=analysis,
        status="secure" if report.secure else "insecure",
        secure=report.secure,
        violations=tuple(summarize_violation(v) for v in report.violations),
        paths_explored=report.paths_explored,
        states_stepped=report.states_stepped,
        states_reused=getattr(report, "states_reused", 0),
        truncated=report.truncated,
        wall_time=wall_time,
        phases=phases,
        shard_stats=tuple(
            ShardReport(s.index, s.prefix_len, s.paths_explored,
                        s.violations, s.states_stepped, s.truncated,
                        s.wall_time)
            for s in getattr(report, "shards", ())),
        pruning=(getattr(report, "pruning", None).to_dict()
                 if getattr(report, "pruning", None) is not None else None),
        subsumption=(getattr(report, "subsumption", None).to_dict()
                     if getattr(report, "subsumption", None) is not None
                     else None),
        anytime=(getattr(report, "anytime", None).to_dict()
                 if getattr(report, "anytime", None) is not None else None),
        first_violation=(dict(report.first_violation)
                         if getattr(report, "first_violation", None)
                         is not None else None),
        telemetry=(dict(report.telemetry)
                   if getattr(report, "telemetry", None) is not None
                   else None),
        details=dict(details or {}),
    )
