"""The high-level front end (angr-style): Project + analyses + batch
execution.

    from repro.api import AnalysisManager, AnalysisOptions, Project

    project = Project.from_litmus("kocher_01")
    report = project.analyses.pitchfork()          # one target
    manager = AnalysisManager("two-phase", workers=4)
    reports = manager.run(projects)                # many targets

* :class:`Project` — one object that owns a target under analysis,
  constructible from ``Program``+``Config``, asm source, a litmus-case
  name, or a Table 2 case variant;
* :class:`AnalysisOptions` — every knob, validated, with ``paper()`` and
  ``table2()`` presets;
* :mod:`~repro.api.analyses` — the pluggable analysis registry
  (pitchfork, two-phase, symbolic, sct, cache-attack, metatheory,
  repair);
* :class:`~repro.api.report.Report` — the unified, serialisable result;
* :class:`AnalysisManager` — worker-pool batch execution with a result
  cache;
* :mod:`~repro.api.cli` — the ``python -m repro`` command.
"""

from .analyses import (Analysis, AnalysisHub, CacheAttackAnalysis,
                       MetatheoryAnalysis, PitchforkAnalysis, RepairAnalysis,
                       SCTAnalysis, TwoPhaseAnalysis, available_analyses,
                       get_analysis, register)
from .cli import main
from .manager import AnalysisManager, CacheInfo
from .project import (AnalysisOptions, PAPER_BOUND_FWD, PAPER_BOUND_NO_FWD,
                      Project, TABLE2_BOUND_FWD, TABLE2_BOUND_NO_FWD)
from .report import (PhaseReport, Report, SCHEMA_VERSION, ShardReport,
                     from_analysis_report)

__all__ = [
    "Analysis", "AnalysisHub", "AnalysisManager", "AnalysisOptions",
    "CacheAttackAnalysis", "CacheInfo", "MetatheoryAnalysis",
    "PAPER_BOUND_FWD", "PAPER_BOUND_NO_FWD", "PhaseReport",
    "PitchforkAnalysis", "Project", "RepairAnalysis", "Report",
    "SCHEMA_VERSION",
    "SCTAnalysis", "ShardReport", "TABLE2_BOUND_FWD", "TABLE2_BOUND_NO_FWD",
    "TwoPhaseAnalysis", "available_analyses", "from_analysis_report",
    "get_analysis", "main", "register",
]
